//! Cost-model-driven plan autotuning — turning the roofline
//! [`KernelCost`] model into a makespan *predictor* for a full
//! [`crate::plan::Plan`], and the axis selection built on top of it.
//!
//! The Plan/Executor layer exposes a four-axis schedule space
//! ([`ShingleKernel`] × [`PipelineMode`] × [`AggregationMode`] ×
//! [`ComponentsMode`]), times the device count and the capacity model.
//! Every point is bit-identical by contract (`tests/plan_properties.rs`),
//! so the *only* thing the choice changes is time — which makes it a pure
//! cost-model question. This module prices every point in closed form:
//! batch count and H2D/D2H transfer time from the kernel's
//! [`crate::batch::bytes_per_elem`] footprint, serialized vs
//! double-buffered overlap, the device-aggregation pack + u128 radix sort
//! extras, the on-card inversion, and the ⌊log₂n⌋+2-sweep
//! connected-components schedule — the same arithmetic the modeled bench
//! reports (`crates/bench/benches/residency.rs`, `aggregate_offload.rs`)
//! already use, now shared by the runtime.
//!
//! Two consumers:
//!
//! * [`select`] — the argmin over the axis cross-product, driving
//!   [`crate::plan::Plan::lower_auto`] under
//!   [`crate::params::PlanMode::Auto`].
//! * [`device_weights`] / [`capability_shares`] / [`apportion`] — the
//!   capability-proportional share weighting the multi-GPU driver deals
//!   batches by, so a heterogeneous fleet (say a K20 next to a
//!   half-bandwidth card) stops being gated by its slowest member.
//!
//! Predictions are *simulated* seconds on the same cost model the
//! executor charges, so predicted-vs-measured error reflects schedule
//! approximations (estimated pass-II shape, batch rounding), not clock
//! noise. [`Prediction`] carries two figures because the measured
//! [`crate::timing::StageTimes::device_pipelined`] has two conventions:
//! under [`PipelineMode::Overlapped`] it is the stream-cursor makespan,
//! which excludes the finish-time inversion/CC launches (they run on the
//! default stream) and the flush transfers hidden on the copy stream,
//! while under [`PipelineMode::Synchronous`] it is the serialized counter
//! sum, which includes everything. `seconds` is the full objective the
//! argmin ranks; `device_seconds` is the convention-matched figure the
//! relative-error report compares against the measurement.

use crate::batch::batch_capacity;
use crate::params::{
    AggregationMode, ComponentsMode, ForcedAxes, PipelineMode, ShingleKernel, ShinglingParams,
};
use gpclust_gpu::thrust::cc_sweep_estimate;
use gpclust_gpu::{Gpu, KernelCost};

/// Host global-sort throughput, records/second — the
/// `par_sort_unstable` over 128-bit records that dominates the CPU
/// column under [`AggregationMode::Host`] (see
/// `crates/bench/benches/aggregate_offload.rs`).
pub const HOST_SORT_REC_PER_S: f64 = 5.0e7;

/// Streaming k-way merge throughput, records/second — the CPU work left
/// under [`AggregationMode::Device`] with host components.
pub const HOST_MERGE_REC_PER_S: f64 = 2.5e8;

/// Union–find fold throughput, edges/second — Phase III's CPU work under
/// [`ComponentsMode::Host`] (a pointer chase per edge).
pub const HOST_UNION_EDGES_PER_S: f64 = 1.0e8;

/// Union-edge packing throughput, edges/second — the residual sequential
/// append under [`ComponentsMode::Device`].
pub const HOST_EDGE_EMIT_PER_S: f64 = 6.0e8;

/// Spill-scratch streaming throughput, bytes/second — the sequential
/// buffered write and chunked replay of packed runs under a bounded
/// [`crate::params::MemoryBudget`] (page-cache-backed temp files).
pub const SPILL_BYTES_PER_S: f64 = 2.0e9;

/// Estimated distinct-shingle fraction of the pass-I record stream: the
/// first-level shingle graph G′ gets roughly one vertex per two records
/// at the paper's `s1 = 2` defaults, so the pass-II shape is estimated at
/// `segments ≈ 0.5 · records` with an average list length of 2.
pub const DISTINCT_SHINGLE_RATIO: f64 = 0.5;

/// Devices whose capability share falls below this fraction of the fleet
/// are benched (share 0): dealing them even one batch in `1/share` would
/// gate the makespan, and benching them also frees the capacity model
/// from their (tiny-batch) memory bound — see
/// [`crate::plan::Plan::lower`].
pub const MIN_SHARE: f64 = 0.01;

/// Elements of the nominal probe batch [`device_weights`] prices on every
/// device to turn configs into relative throughput.
pub const NOMINAL_BATCH_ELEMS: usize = 1 << 20;

/// The four resolvable schedule axes of one candidate plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanAxes {
    /// Top-s extraction kernel.
    pub kernel: ShingleKernel,
    /// Transfer/kernel schedule.
    pub mode: PipelineMode,
    /// Where the record sort runs.
    pub aggregation: AggregationMode,
    /// Where the inversion merge and Phase III run.
    pub components: ComponentsMode,
}

impl PlanAxes {
    /// The axes `params` currently pins.
    pub fn of(params: &ShinglingParams) -> Self {
        PlanAxes {
            kernel: params.kernel,
            mode: params.mode,
            aggregation: params.aggregation,
            components: params.components,
        }
    }

    /// `params` with these axes installed (everything else untouched).
    pub fn apply(self, params: ShinglingParams) -> ShinglingParams {
        params
            .with_kernel(self.kernel)
            .with_mode(self.mode)
            .with_aggregation(self.aggregation)
            .with_components(self.components)
    }

    /// Every point of the axis cross-product, in a fixed deterministic
    /// order (the argmin tie-breaks toward earlier entries).
    pub fn all() -> Vec<PlanAxes> {
        let mut out = Vec::with_capacity(16);
        for kernel in [ShingleKernel::SortCompact, ShingleKernel::FusedSelect] {
            for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
                for aggregation in [AggregationMode::Host, AggregationMode::Device] {
                    for components in [ComponentsMode::Host, ComponentsMode::Device] {
                        out.push(PlanAxes {
                            kernel,
                            mode,
                            aggregation,
                            components,
                        });
                    }
                }
            }
        }
        out
    }

    /// Whether this candidate honors the axes `forced` pins to the values
    /// in `pinned`.
    pub fn honors(&self, forced: &ForcedAxes, pinned: &PlanAxes) -> bool {
        (!forced.kernel || self.kernel == pinned.kernel)
            && (!forced.mode || self.mode == pinned.mode)
            && (!forced.aggregation || self.aggregation == pinned.aggregation)
            && (!forced.components || self.components == pinned.components)
    }

    /// Compact one-line rendering (`sort-compact/serialized/host/host`).
    pub fn describe(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            match self.kernel {
                ShingleKernel::SortCompact => "sort-compact",
                ShingleKernel::FusedSelect => "fused-select",
            },
            match self.mode {
                PipelineMode::Synchronous => "serialized",
                PipelineMode::Overlapped => "overlapped",
            },
            match self.aggregation {
                AggregationMode::Host => "host-sort",
                AggregationMode::Device => "device-runs",
            },
            match self.components {
                ComponentsMode::Host => "host-bfs",
                ComponentsMode::Device => "device-cc",
            },
        )
    }
}

/// The size figures of one shingling pass the predictor prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassShape {
    /// Adjacency elements of the pass input (flat array length).
    pub n_elements: usize,
    /// Non-empty adjacency lists (each emits one record per trial).
    pub n_segments: usize,
    /// Top-s output elements per trial: `Σ min(s, len)` over the lists.
    pub out_elements: usize,
    /// Hash trials (`c1` / `c2`).
    pub trials: usize,
    /// Shingle size (`s1` / `s2`).
    pub s: usize,
}

impl PassShape {
    /// Exact shape of a pass over lists delimited by `offsets`.
    pub fn from_offsets(offsets: &[u64], trials: usize, s: usize) -> Self {
        let mut n_segments = 0usize;
        let mut out_elements = 0usize;
        for w in offsets.windows(2) {
            let len = (w[1] - w[0]) as usize;
            if len > 0 {
                n_segments += 1;
                out_elements += len.min(s);
            }
        }
        PassShape {
            n_elements: offsets.last().copied().unwrap_or(0) as usize,
            n_segments,
            out_elements,
            trials,
            s,
        }
    }

    /// Records the pass emits: one per (trial, non-empty list).
    pub fn n_records(&self) -> usize {
        self.trials * self.n_segments
    }
}

/// The full-pipeline workload the predictor prices: pass I over the input
/// graph, pass II over the (estimated) first-level shingle graph, Phase
/// III over the pass-II records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadShape {
    /// Input-graph vertices (the Phase-III vertex range).
    pub n_vertices: usize,
    /// Pass I, exact from the input offsets.
    pub pass1: PassShape,
    /// Pass II, estimated via [`DISTINCT_SHINGLE_RATIO`] (G′ is not known
    /// until pass I runs).
    pub pass2: PassShape,
    /// Bytes the bounded-budget (out-of-core) path spills to scratch —
    /// pass I's packed record runs, written once and replayed once by the
    /// external merge. Zero under an unbounded
    /// [`crate::params::MemoryBudget`]. The resulting spill term is
    /// axis-independent (every candidate shards the same way), so it
    /// shifts predictions uniformly without changing the argmin.
    pub spilled_run_bytes: u64,
}

impl WorkloadShape {
    /// Estimate the workload of clustering lists `offsets` over
    /// `n_vertices` vertices under `params`.
    pub fn from_input(n_vertices: usize, offsets: &[u64], params: &ShinglingParams) -> Self {
        let pass1 = PassShape::from_offsets(offsets, params.c1, params.s1);
        let records1 = pass1.n_records();
        let segments2 = ((records1 as f64 * DISTINCT_SHINGLE_RATIO) as usize).max(1);
        let pass2 = PassShape {
            n_elements: records1.max(1),
            n_segments: segments2,
            out_elements: (segments2 * params.s2).min(records1.max(1)),
            trials: params.c2,
            s: params.s2,
        };
        let spilled_run_bytes = if params.mem_budget.or_env().is_unbounded() {
            0
        } else {
            // Pass I's complete records reach the external merge as packed
            // runs: 16 B of packed key/node/index plus 4 B per element.
            records1 as u64 * (16 + 4 * params.s1 as u64)
        };
        WorkloadShape {
            n_vertices,
            pass1,
            pass2,
            spilled_run_bytes,
        }
    }

    /// Phase-III union edges: each pass-II record chains its `s` elements
    /// and its generator's `s` elements through one anchor — `2s − 1`
    /// packed edges per record.
    pub fn n_union_edges(&self) -> usize {
        self.pass2.n_records() * (2 * self.pass2.s).saturating_sub(1)
    }
}

/// How a fleet's batches are dealt when pricing a multi-device plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharing {
    /// Uniform round-robin (the historical dealing; gated by the slowest
    /// card).
    RoundRobin,
    /// Capability-proportional shares from [`capability_shares`].
    Weighted,
}

/// A priced plan candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The full objective the argmin ranks: device critical path under
    /// the candidate schedule, plus the finish-time inversion/CC tail,
    /// plus the modeled host seconds on the critical path.
    pub seconds: f64,
    /// Predicted [`crate::timing::StageTimes::device_pipelined`] under
    /// the measurement's convention (see the module docs) — what the
    /// relative-error report compares.
    pub device_seconds: f64,
    /// Modeled host seconds (sort/merge/union-find/edge packing).
    pub host_seconds: f64,
    /// Total batches across both passes.
    pub n_batches: u64,
}

/// Per-round kernel seconds of one batch under `kernel`:
/// transform + segmented sort + gather for [`ShingleKernel::SortCompact`],
/// the single fused selection launch for [`ShingleKernel::FusedSelect`].
fn kernel_round_seconds(
    gpu: &Gpu,
    kernel: ShingleKernel,
    batch_elems: usize,
    out_elems: usize,
) -> f64 {
    match kernel {
        ShingleKernel::SortCompact => gpu.model_kernel_sequence_seconds(&[
            (batch_elems, KernelCost::transform()),
            (batch_elems, KernelCost::segmented_sort()),
            (out_elems, KernelCost::gather()),
        ]),
        ShingleKernel::FusedSelect => {
            gpu.model_kernel_sequence_seconds(&[(batch_elems, KernelCost::segmented_select())])
        }
    }
}

/// Closed-form cost of `b_d` of a pass's `n_batches` batches on `gpu`.
struct ShareCost {
    serialized: f64,
    pipelined: f64,
}

fn model_pass_share(
    gpu: &Gpu,
    kernel: ShingleKernel,
    aggregation: AggregationMode,
    shape: &PassShape,
    n_batches: usize,
    b_d: usize,
) -> ShareCost {
    if n_batches == 0 || b_d == 0 {
        return ShareCost {
            serialized: 0.0,
            pipelined: 0.0,
        };
    }
    let batch_elems = shape.n_elements.div_ceil(n_batches);
    let out_per_batch = shape.out_elements.div_ceil(n_batches).max(1);
    let h2d = gpu.model_transfer_seconds(batch_elems * 4);
    let kernels = kernel_round_seconds(gpu, kernel, batch_elems, out_per_batch);
    let d2h = gpu.model_transfer_seconds(out_per_batch * 8);
    let (b, t) = (b_d as f64, shape.trials as f64);
    let mut serialized = b * (h2d + t * (kernels + d2h));
    let mut pipelined = b * (h2d + t * kernels + d2h);
    if aggregation == AggregationMode::Device {
        // Pack + u128 radix sort over this share's records, plus the
        // staged record columns up and sorted runs down. The kernels sit
        // on the compute stream either way; the flush transfers ride the
        // copy stream, so the overlapped schedule hides them.
        let r = shape.n_records() * b_d / n_batches;
        let agg_kernels = gpu.model_kernel_sequence_seconds(&[
            (r, KernelCost::transform()),
            (r, KernelCost::pair_sort()),
        ]);
        let agg_transfers = gpu.model_transfer_seconds(r * 4 * (shape.s + 2))
            + gpu.model_transfer_seconds(r * (16 + 4 * shape.s));
        serialized += agg_kernels + agg_transfers;
        pipelined += agg_kernels;
    }
    ShareCost {
        serialized,
        pipelined,
    }
}

/// Modeled seconds of the on-card inversion of `records` sorted records
/// into the CSR shingle graph (boundary flags, scans, gathers — the
/// single-run shape of `thrust::invert_sorted_runs`).
pub fn model_inversion_seconds(gpu: &Gpu, records: usize) -> f64 {
    gpu.model_kernel_sequence_seconds(&[
        (records, KernelCost::transform()),
        (records, KernelCost::transform()),
        (records, KernelCost::transform()),
        (records, KernelCost::gather()),
    ])
}

/// Modeled seconds of the hooking + pointer-jumping components kernel
/// over `n` vertices and `m` directed union edges
/// (`thrust::connected_components`'s schedule: symmetrize, edge radix
/// sort, offsets, label init, then `cc_sweep_estimate(n)` sweeps).
pub fn model_cc_seconds(gpu: &Gpu, n: usize, m: usize) -> f64 {
    let setup = gpu.model_kernel_sequence_seconds(&[
        (2 * m, KernelCost::transform()),
        (2 * m, KernelCost::pair_sort()),
        (2 * m, KernelCost::transform()),
        (n, KernelCost::transform()),
    ]);
    let sweeps = cc_sweep_estimate(n) as f64
        * gpu.model_kernel_seconds(2 * m + n, &KernelCost::cc_iteration());
    setup + sweeps
}

/// Modeled host seconds on the critical path for a run that emitted
/// `records1` pass-I records and `union_edges` Phase-III edges: the
/// global sort / k-way merge the aggregation axis leaves on the CPU, plus
/// the union–find fold / edge packing the components axis leaves.
pub fn host_model_seconds(
    aggregation: AggregationMode,
    components: ComponentsMode,
    records1: usize,
    union_edges: usize,
) -> f64 {
    let aggregation_s = match (aggregation, components) {
        (AggregationMode::Host, _) => records1 as f64 / HOST_SORT_REC_PER_S,
        (AggregationMode::Device, ComponentsMode::Host) => records1 as f64 / HOST_MERGE_REC_PER_S,
        // Device runs invert on the card — no host merge left.
        (AggregationMode::Device, ComponentsMode::Device) => 0.0,
    };
    let phase3_s = match components {
        ComponentsMode::Host => union_edges as f64 / HOST_UNION_EDGES_PER_S,
        ComponentsMode::Device => union_edges as f64 / HOST_EDGE_EMIT_PER_S,
    };
    aggregation_s + phase3_s
}

/// Relative throughput of each device on a nominal probe batch
/// ([`NOMINAL_BATCH_ELEMS`] elements, half of them surviving to the top-s
/// output) under `kernel` with `trials` hash rounds: `1 / serialized
/// batch seconds`, 0 for lost devices. Bandwidth, compute rate, PCIe and
/// launch overhead all land in the figure through the same model the
/// executor charges.
pub fn device_weights(gpus: &[Gpu], kernel: ShingleKernel, trials: usize) -> Vec<f64> {
    gpus.iter()
        .map(|gpu| {
            if gpu.is_lost() {
                return 0.0;
            }
            let n = NOMINAL_BATCH_ELEMS;
            let out = n / 2;
            let h2d = gpu.model_transfer_seconds(n * 4);
            let kernels = kernel_round_seconds(gpu, kernel, n, out);
            let d2h = gpu.model_transfer_seconds(out * 8);
            1.0 / (h2d + trials.max(1) as f64 * (kernels + d2h))
        })
        .collect()
}

/// Normalize raw weights into capability shares summing to 1, benching
/// any device below [`MIN_SHARE`] of the fleet (share 0) and
/// renormalizing. All-zero input yields all-zero shares.
pub fn capability_shares(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return vec![0.0; weights.len()];
    }
    let mut shares: Vec<f64> = weights
        .iter()
        .map(|w| {
            let s = w / total;
            if s < MIN_SHARE {
                0.0
            } else {
                s
            }
        })
        .collect();
    let kept: f64 = shares.iter().sum();
    if kept > 0.0 {
        for s in &mut shares {
            *s /= kept;
        }
    }
    shares
}

/// Split `total` items into per-share counts by largest-remainder
/// (Hamilton) apportionment: each share gets `⌊share·total⌋`, leftovers
/// go to the largest fractional parts (ties to the lower index). Counts
/// sum to `total`, zero shares get zero, and a strictly larger share
/// never gets fewer items than a smaller one.
pub fn apportion(total: usize, shares: &[f64]) -> Vec<usize> {
    let sum: f64 = shares.iter().sum();
    if total == 0 || sum <= 0.0 {
        return vec![0; shares.len()];
    }
    let quotas: Vec<f64> = shares.iter().map(|s| s / sum * total as f64).collect();
    let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..shares.len()).collect();
    order.sort_by(|&a, &b| {
        let (fa, fb) = (quotas[a] - quotas[a].floor(), quotas[b] - quotas[b].floor());
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    for &i in order.iter().take(total - assigned) {
        counts[i] += 1;
    }
    counts
}

/// Price one candidate plan on the fleet.
///
/// Per pass: the batch count follows the fleet capacity (smallest
/// unbenched device under the candidate kernel/aggregation — the same
/// rule [`crate::plan::Plan::lower`] applies), batches are apportioned by
/// `sharing`, each device's share is priced in closed form, and the pass
/// makespan is the maximum over devices. The inversion/CC tail runs on
/// the first surviving device; host work is [`host_model_seconds`].
pub fn predict(
    axes: PlanAxes,
    w: &WorkloadShape,
    gpus: &[Gpu],
    sharing: Sharing,
) -> Option<Prediction> {
    let weights = device_weights(gpus, axes.kernel, w.pass1.trials);
    let shares = match sharing {
        Sharing::Weighted => capability_shares(&weights),
        Sharing::RoundRobin => {
            let n_alive = weights.iter().filter(|&&w| w > 0.0).count();
            weights
                .iter()
                .map(|&w| {
                    if w > 0.0 {
                        1.0 / n_alive.max(1) as f64
                    } else {
                        0.0
                    }
                })
                .collect()
        }
    };
    let min_mem = gpus
        .iter()
        .zip(&shares)
        .filter(|&(_, &s)| s > 0.0)
        .map(|(g, _)| g.mem_available())
        .min()?;
    let lead = gpus.iter().position(|g| !g.is_lost())?;

    let mut pass_serialized = [0.0f64; 2];
    let mut pass_pipelined = [0.0f64; 2];
    let mut n_batches = 0u64;
    // Pass II always aggregates on the host (its records feed Phase III,
    // not a sort), exactly as the pipeline schedules it.
    let passes = [
        (&w.pass1, axes.aggregation),
        (&w.pass2, AggregationMode::Host),
    ];
    for (i, (shape, aggregation)) in passes.into_iter().enumerate() {
        let capacity = batch_capacity(min_mem, axes.kernel, aggregation);
        let b = shape.n_elements.div_ceil(capacity.max(1));
        n_batches += b as u64;
        let counts = apportion(b, &shares);
        for (gpu, &b_d) in gpus.iter().zip(&counts) {
            let cost = model_pass_share(gpu, axes.kernel, aggregation, shape, b, b_d);
            pass_serialized[i] = pass_serialized[i].max(cost.serialized);
            pass_pipelined[i] = pass_pipelined[i].max(cost.pipelined);
        }
    }

    // Finish-time tail on the lead device: inversion only when the device
    // runs replace the host merge, CC whenever Phase III is on-card.
    let records1 = w.pass1.n_records();
    let m = w.n_union_edges();
    let tail = match (axes.aggregation, axes.components) {
        (_, ComponentsMode::Host) => 0.0,
        (aggregation, ComponentsMode::Device) => {
            let inversion = if aggregation == AggregationMode::Device {
                model_inversion_seconds(&gpus[lead], records1)
            } else {
                0.0
            };
            inversion
                + model_cc_seconds(&gpus[lead], w.n_vertices, m)
                + gpus[lead].model_transfer_seconds(m * 8)
                + gpus[lead].model_transfer_seconds(w.n_vertices * 4)
        }
    };
    // Bounded-budget spill traffic: runs are written once and replayed
    // once by the external merge. Identical for every candidate, so it
    // improves absolute predictions without moving the argmin.
    let spill_seconds = 2.0 * w.spilled_run_bytes as f64 / SPILL_BYTES_PER_S;
    let host_seconds =
        host_model_seconds(axes.aggregation, axes.components, records1, m) + spill_seconds;

    let (pass_path, device_seconds) = match axes.mode {
        PipelineMode::Synchronous => {
            let ser = pass_serialized[0] + pass_serialized[1];
            (ser, ser + tail)
        }
        PipelineMode::Overlapped => {
            let pipe = pass_pipelined[0] + pass_pipelined[1];
            (pipe, pipe)
        }
    };
    Some(Prediction {
        seconds: pass_path + tail + host_seconds,
        device_seconds,
        host_seconds,
        n_batches,
    })
}

/// The autotuner's verdict: the chosen axes and their prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// The winning axis combination.
    pub axes: PlanAxes,
    /// Its predicted cost.
    pub prediction: Prediction,
}

/// Argmin of [`predict`] over the axis cross-product, honoring the axes
/// `forced` pins to the values in `params` (weighted sharing — the
/// dealing the multi-GPU driver uses). `None` once no device survives.
pub fn select(
    params: &ShinglingParams,
    forced: ForcedAxes,
    w: &WorkloadShape,
    gpus: &[Gpu],
) -> Option<Selection> {
    let pinned = PlanAxes::of(params);
    let mut best: Option<Selection> = None;
    for axes in PlanAxes::all() {
        if !axes.honors(&forced, &pinned) {
            continue;
        }
        let prediction = predict(axes, w, gpus, Sharing::Weighted)?;
        if best.is_none_or(|b| prediction.seconds < b.prediction.seconds) {
            best = Some(Selection { axes, prediction });
        }
    }
    best
}

/// Price an incremental refresh under `params`' (already-resolved) axes:
/// Pass I runs over only the touched lists (`delta_pass1`), then the
/// host retracts those vertices' records from the stored index (one scan
/// of `index_records`), k-way-merges the fresh run back in, and rebuilds
/// G′ from the merged index before Passes II/III run at full union size
/// exactly as a from-scratch recluster would. The extra index-upkeep
/// terms are what a full recluster never pays; the savings are the
/// untouched share of Pass I. Compare against [`predict`] on the union
/// shape to decide a refresh.
pub fn predict_delta(
    params: &ShinglingParams,
    union: &WorkloadShape,
    delta_pass1: PassShape,
    index_records: usize,
    gpus: &[Gpu],
) -> Option<Prediction> {
    let axes = PlanAxes::of(params);
    let mut w = *union;
    w.pass1 = delta_pass1;
    w.spilled_run_bytes = if params.mem_budget.or_env().is_unbounded() {
        0
    } else {
        delta_pass1.n_records() as u64 * (16 + 4 * params.s1 as u64)
    };
    let mut p = predict(axes, &w, gpus, Sharing::Weighted)?;
    // Retraction scan + k-way merge + StreamInverter rebuild, all at
    // host merge throughput. The full path's own inversion of its
    // (delta-sized) pass-I records is already inside `predict`'s host
    // term, so only the merged-index work is added here.
    let merged = index_records + delta_pass1.n_records();
    let upkeep = (index_records + 2 * merged) as f64 / HOST_MERGE_REC_PER_S;
    p.seconds += upkeep;
    p.host_seconds += upkeep;
    Some(p)
}

/// The touched fraction at which an incremental refresh stops paying:
/// the smallest share of the union's pass-I work (uniform scaling of
/// its shape) where [`predict_delta`] prices at or above a full
/// recluster ([`predict`] on the union shape, weighted sharing). `1.0`
/// when the delta pass wins at every fraction. `None` once no device
/// survives.
pub fn delta_crossover_fraction(
    params: &ShinglingParams,
    union: &WorkloadShape,
    index_records: usize,
    gpus: &[Gpu],
) -> Option<f64> {
    let axes = PlanAxes::of(params);
    let full = predict(axes, union, gpus, Sharing::Weighted)?.seconds;
    let scaled = |f: f64| PassShape {
        n_elements: (union.pass1.n_elements as f64 * f).round() as usize,
        n_segments: ((union.pass1.n_segments as f64 * f).round() as usize).max(1),
        out_elements: (union.pass1.out_elements as f64 * f).round() as usize,
        ..union.pass1
    };
    if predict_delta(params, union, scaled(1.0), index_records, gpus)?.seconds < full {
        return Some(1.0);
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..32 {
        let mid = 0.5 * (lo + hi);
        let d = predict_delta(params, union, scaled(mid), index_records, gpus)?.seconds;
        if d < full {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_gpu::DeviceConfig;

    fn k20() -> Gpu {
        Gpu::with_workers(DeviceConfig::tesla_k20(), 1)
    }

    fn workload() -> WorkloadShape {
        let params = ShinglingParams::paper_default(7);
        // 20K-like: 4M elements over 20K lists.
        let offsets: Vec<u64> = (0..=20_000u64).map(|i| i * 200).collect();
        WorkloadShape::from_input(20_000, &offsets, &params)
    }

    #[test]
    fn pass_shape_counts_segments_and_outputs() {
        // Lists: [0..3), empty, [3..8), [8..9)
        let shape = PassShape::from_offsets(&[0, 3, 3, 8, 9], 10, 2);
        assert_eq!(shape.n_elements, 9);
        assert_eq!(shape.n_segments, 3, "empty list skipped");
        assert_eq!(shape.out_elements, 2 + 2 + 1, "min(s, len) per list");
        assert_eq!(shape.n_records(), 30);
    }

    #[test]
    fn workload_estimates_pass_two_from_ratio() {
        let w = workload();
        assert_eq!(w.pass1.n_records(), 200 * 20_000);
        let expect_segments = (w.pass1.n_records() as f64 * DISTINCT_SHINGLE_RATIO) as usize;
        assert_eq!(w.pass2.n_segments, expect_segments);
        assert_eq!(w.pass2.n_elements, w.pass1.n_records());
        assert_eq!(w.n_union_edges(), w.pass2.n_records() * 3);
    }

    #[test]
    fn bounded_budget_adds_spill_cost_without_moving_the_argmin() {
        if std::env::var_os("GPCLUST_MEM_BUDGET").is_some() {
            // The CI out-of-core job's env bound would make the "free"
            // workload spill too; the contrast below needs both sides.
            return;
        }
        let gpus = vec![k20()];
        let params = ShinglingParams::paper_default(7);
        let offsets: Vec<u64> = (0..=20_000u64).map(|i| i * 200).collect();
        let free = WorkloadShape::from_input(20_000, &offsets, &params);
        let bounded_params = params.with_mem_budget(64 << 20);
        let bounded = WorkloadShape::from_input(20_000, &offsets, &bounded_params);
        assert_eq!(free.spilled_run_bytes, 0);
        assert_eq!(
            bounded.spilled_run_bytes,
            free.pass1.n_records() as u64 * (16 + 4 * params.s1 as u64)
        );
        let forced = ForcedAxes::default();
        let a = select(&params, forced, &free, &gpus).unwrap();
        let b = select(&bounded_params, forced, &bounded, &gpus).unwrap();
        assert_eq!(a.axes, b.axes, "spill term is axis-independent");
        let spill = 2.0 * bounded.spilled_run_bytes as f64 / SPILL_BYTES_PER_S;
        assert!(
            (b.prediction.seconds - a.prediction.seconds - spill).abs() < 1e-9,
            "bounded prediction carries exactly the spill term"
        );
    }

    #[test]
    fn overlap_beats_serialized_and_select_beats_sort() {
        let gpus = vec![k20()];
        let w = workload();
        let base = PlanAxes {
            kernel: ShingleKernel::SortCompact,
            mode: PipelineMode::Synchronous,
            aggregation: AggregationMode::Host,
            components: ComponentsMode::Host,
        };
        let sync = predict(base, &w, &gpus, Sharing::Weighted).unwrap();
        let ovl = predict(
            PlanAxes {
                mode: PipelineMode::Overlapped,
                ..base
            },
            &w,
            &gpus,
            Sharing::Weighted,
        )
        .unwrap();
        assert!(ovl.seconds < sync.seconds, "{ovl:?} !< {sync:?}");
        let sel = predict(
            PlanAxes {
                kernel: ShingleKernel::FusedSelect,
                ..base
            },
            &w,
            &gpus,
            Sharing::Weighted,
        )
        .unwrap();
        assert!(sel.seconds < sync.seconds, "{sel:?} !< {sync:?}");
    }

    #[test]
    fn weights_follow_device_capability() {
        let gpus = vec![
            k20(),
            Gpu::with_workers(DeviceConfig::tesla_k20_half_bandwidth(), 1),
        ];
        let weights = device_weights(&gpus, ShingleKernel::SortCompact, 200);
        assert!(weights[0] > weights[1], "{weights:?}");
        let shares = capability_shares(&weights);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(shares[1] > MIN_SHARE, "half-bandwidth card must keep work");

        // The tiny test device stays above the benching cutoff (so the
        // existing mixed-fleet capacity tests keep their semantics) …
        let mixed = vec![
            k20(),
            Gpu::with_workers(DeviceConfig::tiny_test_device(), 1),
        ];
        let shares = capability_shares(&device_weights(&mixed, ShingleKernel::SortCompact, 200));
        assert!(shares[1] > 0.0, "{shares:?}");

        // … while a ~1000×-derated card gets benched.
        let weak = vec![
            k20(),
            Gpu::with_workers(DeviceConfig::tesla_k20().scaled("weak", 1e-3), 1),
        ];
        let shares = capability_shares(&device_weights(&weak, ShingleKernel::SortCompact, 200));
        assert_eq!(shares[1], 0.0, "{shares:?}");
        assert_eq!(shares[0], 1.0, "{shares:?}");
    }

    #[test]
    fn apportion_sums_and_stays_monotone() {
        for total in [0usize, 1, 2, 7, 16, 1000] {
            let shares = [0.5, 0.3, 0.2, 0.0];
            let counts = apportion(total, &shares);
            assert_eq!(counts.iter().sum::<usize>(), total);
            assert_eq!(counts[3], 0, "zero share gets nothing");
            assert!(
                counts[0] >= counts[1] && counts[1] >= counts[2],
                "{counts:?}"
            );
        }
        // Uniform shares differ by at most one, earlier indices first.
        let counts = apportion(7, &[1.0, 1.0, 1.0]);
        assert_eq!(counts, vec![3, 2, 2]);
        assert_eq!(apportion(5, &[0.0, 0.0]), vec![0, 0]);
    }

    #[test]
    fn heterogeneous_weighted_beats_round_robin() {
        // Cap device memory so the pass actually splits into enough
        // batches for the dealing policy to matter (a 5 GB card swallows
        // the whole pass in one batch, where every policy deals alike).
        let small = |cfg: DeviceConfig| {
            Gpu::with_workers(
                DeviceConfig {
                    global_mem_bytes: 256 << 20,
                    ..cfg
                },
                1,
            )
        };
        let gpus = vec![
            small(DeviceConfig::tesla_k20()),
            small(DeviceConfig::tesla_k20_half_bandwidth()),
        ];
        let params = ShinglingParams::paper_default(7);
        // 2M-like: 400M elements over 2M lists.
        let offsets: Vec<u64> = (0..=2_000_000u64).map(|i| i * 200).collect();
        let w = WorkloadShape::from_input(2_000_000, &offsets, &params);
        let axes = PlanAxes {
            kernel: ShingleKernel::SortCompact,
            mode: PipelineMode::Synchronous,
            aggregation: AggregationMode::Host,
            components: ComponentsMode::Host,
        };
        let rr = predict(axes, &w, &gpus, Sharing::RoundRobin).unwrap();
        let weighted = predict(axes, &w, &gpus, Sharing::Weighted).unwrap();
        assert!(
            weighted.seconds < rr.seconds,
            "weighted {weighted:?} !< round-robin {rr:?}"
        );
    }

    #[test]
    fn select_is_the_argmin_and_honors_forced_axes() {
        let params = ShinglingParams::paper_default(7);
        let gpus = vec![k20()];
        let w = workload();
        let free = select(&params, ForcedAxes::default(), &w, &gpus).unwrap();
        for axes in PlanAxes::all() {
            let p = predict(axes, &w, &gpus, Sharing::Weighted).unwrap();
            assert!(
                free.prediction.seconds <= p.seconds + 1e-12,
                "{:?} beat the selection",
                axes
            );
        }
        // Pinning the kernel keeps it, even though the free argmin would
        // switch it.
        let forced = ForcedAxes {
            kernel: true,
            ..Default::default()
        };
        let pinned = select(&params, forced, &w, &gpus).unwrap();
        assert_eq!(pinned.axes.kernel, params.kernel);
        assert!(pinned.prediction.seconds >= free.prediction.seconds - 1e-12);
        // Pinning everything reproduces the manual plan's axes.
        let all = ForcedAxes {
            kernel: true,
            mode: true,
            aggregation: true,
            components: true,
        };
        let manual = select(&params, all, &w, &gpus).unwrap();
        assert_eq!(manual.axes, PlanAxes::of(&params));
    }

    #[test]
    fn host_model_moves_work_off_the_cpu() {
        let (r, m) = (4_000_000usize, 6_000_000usize);
        let host_host = host_model_seconds(AggregationMode::Host, ComponentsMode::Host, r, m);
        let dev_host = host_model_seconds(AggregationMode::Device, ComponentsMode::Host, r, m);
        let dev_dev = host_model_seconds(AggregationMode::Device, ComponentsMode::Device, r, m);
        assert!(dev_host < host_host);
        assert!(dev_dev < dev_host);
        assert!(dev_dev > 0.0, "edge packing never free");
    }

    #[test]
    fn empty_input_predicts_zero_batches() {
        let params = ShinglingParams::light(1);
        let w = WorkloadShape::from_input(2, &[0, 0, 0], &params);
        let p = predict(PlanAxes::of(&params), &w, &[k20()], Sharing::Weighted).unwrap();
        assert_eq!(p.n_batches, 1, "the estimated pass-II floor remains");
        assert!(p.seconds.is_finite());
    }
}
