//! Min-wise shingle-collision theory — the probabilistic backbone of the
//! algorithm, made executable.
//!
//! The paper leans on Broder et al.'s min-wise independent permutations:
//! "a permutation thus obtained preserves the min-wise independent property
//! that guarantees, with high probability, that vertices of a densely
//! connected subgraph would also share significant number of shingles."
//! This module states that guarantee exactly and the tests verify it
//! *empirically against this codebase's own hash family*:
//!
//! For neighborhoods A, B with `x = |A ∩ B|` and `u = |A ∪ B|`, a random
//! permutation makes the two s-shingles (the s minima of A and of B)
//! identical **iff** the s minima of A ∪ B all land in A ∩ B:
//!
//! ```text
//! P(shingle match) = C(x, s) / C(u, s)
//! ```
//!
//! (for s = 1 this is the classic Jaccard estimator `x/u`). Over `c`
//! independent trials, vertices share at least one shingle with probability
//! `1 − (1 − p)^c` — which is what makes `c` the sensitivity knob the
//! paper credits for its quality results, and what [`recommend_c`] inverts
//! to choose a trial count for a target detection probability.

/// Exact probability that two s-shingles coincide, given intersection
/// size `x` and union size `u` (`x ≤ u`).
///
/// Returns 0 when either neighborhood cannot produce a full shingle
/// (`u < s`) or the intersection is too small (`x < s`).
pub fn p_shingle_match(x: usize, u: usize, s: usize) -> f64 {
    assert!(x <= u, "intersection larger than union");
    assert!(s >= 1);
    if x < s || u < s {
        return 0.0;
    }
    // C(x, s) / C(u, s) computed as a product of ratios for stability.
    let mut p = 1.0f64;
    for i in 0..s {
        p *= (x - i) as f64 / (u - i) as f64;
    }
    p
}

/// Probability of sharing at least one shingle across `c` trials.
pub fn p_detect(x: usize, u: usize, s: usize, c: usize) -> f64 {
    let p = p_shingle_match(x, u, s);
    1.0 - (1.0 - p).powi(c as i32)
}

/// Expected number of shared shingles across `c` trials.
pub fn expected_shared(x: usize, u: usize, s: usize, c: usize) -> f64 {
    c as f64 * p_shingle_match(x, u, s)
}

/// Smallest trial count `c` achieving `P(detect) ≥ target` for the given
/// overlap geometry, or `None` if a single-trial match is impossible.
pub fn recommend_c(x: usize, u: usize, s: usize, target: f64) -> Option<usize> {
    assert!((0.0..1.0).contains(&target));
    let p = p_shingle_match(x, u, s);
    if p <= 0.0 {
        return None;
    }
    if p >= 1.0 {
        return Some(1);
    }
    Some(((1.0 - target).ln() / (1.0 - p).ln()).ceil().max(1.0) as usize)
}

/// Jaccard index from intersection/union sizes.
pub fn jaccard(x: usize, u: usize) -> f64 {
    if u == 0 {
        0.0
    } else {
        x as f64 / u as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minwise::{pack, HashFamily, TopS};

    #[test]
    fn closed_form_basics() {
        // s = 1 reduces to Jaccard.
        assert!((p_shingle_match(3, 10, 1) - 0.3).abs() < 1e-12);
        // Full overlap always matches; empty intersection never.
        assert_eq!(p_shingle_match(10, 10, 3), 1.0);
        assert_eq!(p_shingle_match(0, 10, 2), 0.0);
        // Too-small intersection cannot produce a shared s-shingle.
        assert_eq!(p_shingle_match(2, 10, 3), 0.0);
        // C(4,2)/C(8,2) = 6/28.
        assert!((p_shingle_match(4, 8, 2) - 6.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn detection_grows_with_c_and_saturates() {
        let p1 = p_detect(5, 20, 2, 10);
        let p2 = p_detect(5, 20, 2, 100);
        let p3 = p_detect(5, 20, 2, 2000);
        assert!(p1 < p2 && p2 < p3);
        assert!(p3 > 0.99);
    }

    #[test]
    fn recommend_c_inverts_p_detect() {
        for (x, u, s, target) in [
            (5usize, 20usize, 2usize, 0.9f64),
            (8, 30, 2, 0.99),
            (10, 12, 3, 0.95),
        ] {
            let c = recommend_c(x, u, s, target).unwrap();
            assert!(p_detect(x, u, s, c) >= target, "c={c}");
            if c > 1 {
                assert!(p_detect(x, u, s, c - 1) < target, "c-1 suffices");
            }
        }
        assert_eq!(recommend_c(1, 10, 2, 0.9), None);
        assert_eq!(recommend_c(10, 10, 2, 0.9), Some(1));
    }

    /// Monte-Carlo collision rate of the implemented machinery for the
    /// given neighborhoods and shingle size.
    fn empirical_match_rate(a: &[u32], b: &[u32], s: usize, c: usize, seed: u64) -> f64 {
        let family = HashFamily::new(c, seed);
        let mut matches = 0usize;
        for trial in 0..c {
            let shingle = |set: &[u32]| {
                let mut top = TopS::new(s);
                for &v in set {
                    top.push(pack(family.hash(trial, v), v));
                }
                top.as_slice().to_vec()
            };
            if shingle(a) == shingle(b) {
                matches += 1;
            }
        }
        matches as f64 / c as f64
    }

    /// The load-bearing test: the *implemented* hash family + top-s buffer
    /// realize the closed-form collision probability on realistic
    /// (hash-scattered) vertex ids — i.e., the paper's linear hash is
    /// min-wise independent enough for the algorithm's math in practice.
    #[test]
    fn implementation_matches_theory_monte_carlo() {
        // Neighborhoods with |A ∩ B| = 6, |A ∪ B| = 18, over scattered ids
        // (splitmix-style spread, like real shuffled sequence ids).
        let id = |i: u64| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as u32;
        let shared: Vec<u32> = (0..6).map(id).collect();
        let a: Vec<u32> = shared.iter().copied().chain((100..106).map(id)).collect();
        let b: Vec<u32> = shared.iter().copied().chain((200..206).map(id)).collect();
        let (x, u) = (6usize, 18usize);

        for s in [1usize, 2, 3] {
            let c = 4_000;
            let empirical = empirical_match_rate(&a, &b, s, c, 0xFEED);
            let theory = p_shingle_match(x, u, s);
            let sigma = (theory * (1.0 - theory) / c as f64).sqrt();
            assert!(
                (empirical - theory).abs() < 4.0 * sigma + 0.01,
                "s={s}: empirical {empirical:.4} vs theory {theory:.4}"
            );
        }
    }

    /// A documented *limitation of the paper's own construction*: a single
    /// linear hash `(A·v + B) mod P` is 2-universal but not exactly
    /// min-wise independent (exact min-wise families are exponentially
    /// large — Broder et al. 2000). On adversarially structured ids
    /// (adjacent integers) the collision rate deviates measurably from the
    /// ideal `C(x,s)/C(u,s)`; the deviation is small enough that clustering
    /// behavior is unaffected, but it is real and reproducible.
    #[test]
    fn linear_hash_minwise_bias_is_bounded() {
        let shared: Vec<u32> = (0..6).collect();
        let a: Vec<u32> = shared.iter().copied().chain(100..106).collect();
        let b: Vec<u32> = shared.iter().copied().chain(200..206).collect();
        let theory = p_shingle_match(6, 18, 1);
        let empirical = empirical_match_rate(&a, &b, 1, 4_000, 0xFEED);
        let bias = (empirical - theory).abs();
        assert!(bias > 0.005, "expected measurable bias, got {bias:.4}");
        assert!(bias < 0.08, "bias {bias:.4} too large to ignore");
    }

    #[test]
    fn paper_defaults_detect_dense_neighbors() {
        // In a dense subgraph of ~45 members (the 20K graph's average
        // degree) where two vertices share 80 % of their neighbors, the
        // paper's defaults (s=2, c=200) detect the pair essentially always.
        let x = 36; // shared neighbors
        let u = 54; // union
        let p = p_detect(x, u, 2, 200);
        assert!(p > 0.999, "p = {p}");
        // Whereas a weakly-overlapping pair (20 % of neighbors) is usually
        // — but not always — left alone by a single trial, and c=200 makes
        // even that overlap detectable: the aggressiveness the Table IV
        // density discussion observes.
        let weak = p_detect(9, 81, 2, 200);
        assert!(weak > 0.5, "weak = {weak}");
    }

    #[test]
    #[should_panic(expected = "intersection larger than union")]
    fn rejects_inconsistent_sizes() {
        p_shingle_match(5, 3, 1);
    }
}
