//! # gpclust-core — the Shingling clustering algorithm
//!
//! The paper's primary contribution: a CPU–GPU implementation of the
//! Shingling randomized dense-subgraph heuristic (Gibson, Kumar, Tomkins,
//! VLDB 2005) for identifying protein family "core sets" in metagenomic
//! homology graphs. This crate provides:
//!
//! * [`params`] — the algorithm parameters (`s1, c1, s2, c2`, seed) with the
//!   paper's defaults (s1=2, c1=200, s2=2, c2=100).
//! * [`minwise`] — min-wise independent permutations via
//!   `h(v) = (A·v + B) mod P` and the s-smallest selection buffer.
//! * [`shingle`] — shingle keys, the raw per-trial shingle records a pass
//!   emits, and the adjacency-input abstraction shared by both passes.
//! * [`serial`] — the serial pClust reference implementation (the baseline
//!   of Table I and the oracle for the GPU path).
//! * [`batch`] — partitioning of adjacency lists into device-memory-sized
//!   batches, including lists split across batch boundaries.
//! * [`decompose`] — pClust's connected-component decomposition driver:
//!   cluster each component independently, merge the results.
//! * [`plan`] — the execution-plan IR: [`plan::Plan`] lowers
//!   [`params::ShinglingParams`] + device statistics into an explicit
//!   per-pass plan (batch list, kernel, schedule, sink, fault policy).
//! * [`autotune`] — the makespan predictor over the plan axis
//!   cross-product (`--plan auto`'s argmin) and the
//!   capability-proportional share weighting for heterogeneous fleets.
//! * [`exec`] — the single [`exec::Executor`] that interprets a pass plan
//!   against the simulated device (Algorithm 1: per-trial hash transform,
//!   segmented sort / fused selection, top-s compaction, per-iteration
//!   D2H transfer), composing kernel/sink/stream strategies.
//! * [`aggregate`] — the CPU-side shingle-graph aggregation, including the
//!   merge of shingle fragments from split adjacency lists.
//! * [`spill`] — spill-to-disk sorted runs and the external k-way merge,
//!   the bounded-memory (out-of-core) variant of the aggregation layer.
//! * [`checkpoint`] — the durability layer over the sharded executor: a
//!   manifest journal of sealed, checksummed shard runs, crash-recovery
//!   resume, and the seeded crash-injection harness.
//! * [`index`] — the persistent shingle index: Pass I's shingle→vertex
//!   posting lists as a durable, incrementally maintained artifact.
//! * [`incremental`] — the base+delta clustering engine: delta passes over
//!   touched vertices merged into the stored index, bit-identical to
//!   re-clustering the union graph from scratch.
//! * [`report`] — Phase III: dense-subgraph reporting, both the overlapping
//!   connected-component variant and the union–find partition variant the
//!   paper adopts.
//! * [`pipeline`] — Algorithm 2: the full gpClust driver with the
//!   per-component timers that populate Table I.
//! * [`baseline`] — the GOS k-neighbor linkage comparator (SNN and
//!   edge-restricted variants).
//! * [`mcl`] — Markov Clustering, the comparator the metagenomics field
//!   standardized on (TribeMCL/OrthoMCL lineage).
//! * [`multi_gpu`] — batches dealt round-robin over several devices.
//! * [`weighted`] — exponential-clock weighted min-hash Shingling (the
//!   extension the paper scopes out).
//! * [`quality`] — pairwise PPV/NPV/SP/SE (Equations 2–5) and cluster
//!   density (Equation 6) against a benchmark partition.
//! * [`timing`] — component timer plumbing.

pub mod aggregate;
pub mod autotune;
pub mod baseline;
pub mod batch;
pub mod checkpoint;
pub mod decompose;
pub mod exec;
mod gpu_pass;
pub mod incremental;
pub mod index;
pub mod mcl;
pub mod minwise;
pub mod multi_gpu;
pub mod params;
pub mod pipeline;
pub mod plan;
pub mod probability;
pub mod quality;
pub mod report;
pub mod resilience;
pub mod serial;
pub mod shingle;
pub mod spill;
pub mod timing;
pub mod weighted;

pub use autotune::{PlanAxes, Prediction, Selection, Sharing, WorkloadShape};
pub use baseline::{kneighbor_clusters, kneighbor_clusters_adjacent};
pub use batch::BatchStats;
pub use checkpoint::{
    CheckpointConfig, CheckpointError, Checkpointer, CrashPlan, CrashSite, KILL_MARKER,
};
pub use exec::{ClusterLabels, Executor, PassInput, PassReport, Sink};
pub use incremental::{EngineError, IncrementalEngine, RefreshDecision, RefreshMode};
pub use index::{IndexSnapshot, IndexStore, ShingleIndex};
pub use params::{
    parse_bytes, AggregationMode, BudgetError, ComponentsMode, FaultPolicy, ForcedAxes,
    MemoryBudget, PipelineMode, PlanMode, ShingleKernel, ShinglingParams,
};
pub use pipeline::{GpClust, GpClustReport};
pub use plan::{FragmentMode, PassPlan, Plan};
pub use quality::{ConfusionCounts, QualityScores};
pub use serial::SerialShingling;
pub use spill::{ExternalRun, SpillStats, SpilledRun};
pub use timing::{RecoveryReport, ResidentGauge, StageTimes};
