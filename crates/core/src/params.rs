//! Shingling algorithm parameters.

use serde::{Deserialize, Serialize};

/// The largest prime below 2³², used as the modulus P of the min-wise hash
/// `h(v) = (A·v + B) mod P`. Hash values therefore fit in 32 bits, which
/// lets a (hash, vertex) pair pack into one sortable `u64` — the layout the
/// segmented sort operates on.
pub const PRIME_P: u64 = 4_294_967_291;

/// How the device pipeline schedules transfers relative to kernels.
///
/// Both modes produce **bit-identical clustering results** — the knob only
/// changes which schedule the simulator's timing model charges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineMode {
    /// Thrust 1.5 semantics (the paper's measured setup): every copy
    /// blocks, so H2D → kernels → D2H serialize on one timeline.
    #[default]
    Synchronous,
    /// Double-buffered streams (the paper's stated future work): the next
    /// batch's H2D and each trial's D2H overlap compute, and the reported
    /// device critical path is the pipelined makespan.
    Overlapped,
}

/// Which device kernel extracts the top-s pairs of each adjacency list.
///
/// Both kernels produce **bit-identical shingle records** — Shingling only
/// ever consumes the `s` smallest permuted values of each list, and the
/// `s`-smallest set (sorted ascending, duplicates included) is the same
/// whether it comes from a full segmented sort or a direct selection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShingleKernel {
    /// The paper's pipeline: `thrust::transform` into a packed `u64`
    /// workspace, a full `O(d log d)` segmented sort per trial, then a
    /// gather compacting each segment's sorted prefix. Kept as the oracle.
    #[default]
    SortCompact,
    /// Fused hash + segmented top-s selection: one `O(d)` kernel per trial
    /// hashes each element and maintains an s-sized insertion buffer per
    /// segment, writing the selected pairs straight to the output buffer.
    /// No 8-byte packed workspace is materialized, so
    /// [`crate::batch::batch_capacity`] plans roughly 2× larger batches.
    FusedSelect,
}

/// Where the dominant aggregation sort runs.
///
/// Table I charges ~79% of the accelerated runtime to the CPU, and most of
/// that is "a sorting is done to gather all vertices that generated each
/// shingle". Both modes produce **bit-identical clustering results** — the
/// knob only moves that sort between processors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationMode {
    /// The paper's measured setup (and the oracle): every record streams
    /// into [`crate::aggregate::StreamAggregator`] and one giant 128-bit
    /// `par_sort_unstable` groups them on the host.
    #[default]
    Host,
    /// Each batch's records are packed and radix-sorted *on the device*
    /// (two u64 key passes over the 128-bit records), downloaded as sorted
    /// runs whose D2H overlaps the next batch's kernels, and k-way merged
    /// on the host in one streaming heap pass — O(|E′| log runs) host work
    /// instead of a global sort.
    Device,
}

/// Where Phase III's connected components run.
///
/// Both modes produce **bit-identical clustering results** — the device
/// kernel's min-vertex-id labels induce exactly the equivalence relation
/// the host union–find accumulates, and the partition canonicalizes group
/// ids densely by first appearance either way. The knob only moves the
/// inversion merge and the component computation between processors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComponentsMode {
    /// The oracle: second-level records stream straight into the host
    /// union–find ([`crate::report::union_second_level_record`]), and —
    /// under device aggregation — the sorted runs k-way merge on the host.
    #[default]
    Host,
    /// Device-resident Phase III: sorted runs invert on the card
    /// (boundary-flag + scan + gather) and the second-level record edges
    /// feed a hooking/pointer-jumping connected-components kernel; the
    /// host only unions per-device label groups (multi-GPU) and
    /// canonicalizes the final partition.
    Device,
}

/// How [`crate::plan::Plan`] resolves the schedule axes.
///
/// Both modes produce **bit-identical clustering results** — every point
/// of the axis cross-product is bit-identical by contract (pinned by
/// `tests/plan_properties.rs`), so letting the cost model pick the point
/// can only change the timing, never the clusters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanMode {
    /// The axes are exactly what the params say (the historical behavior).
    #[default]
    Manual,
    /// Cost-model-driven: free axes take the predicted-makespan argmin
    /// over the axis cross-product (see [`crate::autotune`]); axes marked
    /// forced keep the params' explicit values — an explicit CLI flag
    /// still wins over the model.
    Auto(ForcedAxes),
}

/// Which schedule axes an [`PlanMode::Auto`] lowering must *not* retune —
/// the axes the user pinned with an explicit flag. The default forces
/// nothing (fully automatic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForcedAxes {
    /// Keep [`ShinglingParams::kernel`] as given.
    #[serde(default)]
    pub kernel: bool,
    /// Keep [`ShinglingParams::mode`] as given.
    #[serde(default)]
    pub mode: bool,
    /// Keep [`ShinglingParams::aggregation`] as given.
    #[serde(default)]
    pub aggregation: bool,
    /// Keep [`ShinglingParams::components`] as given.
    #[serde(default)]
    pub components: bool,
}

/// Out-of-core memory budget for the clustering passes.
///
/// Both settings produce **bit-identical clustering results** — the knob
/// only decides whether pass I streams the input in vertex-range shards
/// whose sorted runs spill to disk (see [`crate::spill`]) instead of
/// holding the whole working set resident. `bytes` caps the pass's
/// resident working set and derives the shard count; `shards` forces an
/// explicit shard count directly (useful for benchmarks); both unset (the
/// default) keeps the historical fully-resident path.
///
/// The environment variable `GPCLUST_MEM_BUDGET` (bytes, with optional
/// `K`/`M`/`G` suffix) supplies a budget when the params leave it unset —
/// the hook CI uses to drive the whole test suite through the spill path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryBudget {
    /// Resident-byte cap for the sharded pass (`None` = uncapped).
    #[serde(default)]
    pub bytes: Option<u64>,
    /// Explicit shard count override (`None` = derive from `bytes`).
    #[serde(default)]
    pub shards: Option<u32>,
}

impl MemoryBudget {
    /// True when neither a byte cap nor a shard count is configured — the
    /// fully-resident path.
    pub fn is_unbounded(&self) -> bool {
        self.bytes.is_none() && self.shards.is_none()
    }

    /// This budget, falling back to `GPCLUST_MEM_BUDGET` when unset.
    /// Explicit params always win over the environment.
    pub fn or_env(self) -> Self {
        if !self.is_unbounded() {
            return self;
        }
        match std::env::var("GPCLUST_MEM_BUDGET") {
            Ok(v) => MemoryBudget {
                bytes: parse_bytes(&v),
                shards: None,
            },
            Err(_) => self,
        }
    }

    /// Shard count for a pass whose fully-resident working set would be
    /// `est_resident_bytes`: an explicit `shards` wins; otherwise the
    /// smallest count whose per-shard slice fits `bytes`, clamped to
    /// `[1, max_shards]` (a shard cannot be smaller than one batch).
    pub fn resolve_shards(&self, est_resident_bytes: u64, max_shards: usize) -> usize {
        let max = max_shards.max(1);
        if let Some(n) = self.shards {
            return (n.max(1) as usize).min(max);
        }
        match self.bytes {
            Some(b) if b > 0 => (est_resident_bytes.div_ceil(b) as usize).clamp(1, max),
            _ => 1,
        }
    }

    /// Reject a byte budget too small to hold even the largest single
    /// vertex's working set (`min_feasible`, see
    /// [`crate::plan::Plan::min_feasible_budget`]) — such a budget cannot
    /// shard its way to feasibility; even a degenerate one-vertex-per-
    /// shard plan would exceed it. An explicit `shards` override skips
    /// the check (the operator asked for that carving by name), as does
    /// an unbounded budget.
    pub fn validate_feasible(&self, min_feasible: u64) -> Result<(), BudgetError> {
        match (self.bytes, self.shards) {
            (Some(b), None) if b < min_feasible => Err(BudgetError {
                budget: b,
                min_feasible,
            }),
            _ => Ok(()),
        }
    }
}

/// A memory budget no shard count can satisfy: the largest single vertex
/// needs more resident bytes than the whole cap allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetError {
    /// The configured resident-byte cap.
    pub budget: u64,
    /// The smallest cap this input is feasible under.
    pub min_feasible: u64,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget of {} bytes is infeasible: the largest single \
             vertex needs {} resident bytes (set GPCLUST_MEM_BUDGET or \
             --mem-budget to at least {})",
            self.budget, self.min_feasible, self.min_feasible
        )
    }
}

impl std::error::Error for BudgetError {}

/// Parse a byte count with an optional `K`/`M`/`G` (binary) suffix, e.g.
/// `"64M"` → 67108864. Returns `None` for malformed input.
pub fn parse_bytes(v: &str) -> Option<u64> {
    let v = v.trim();
    let (digits, mult) = match v.chars().last()? {
        'k' | 'K' => (&v[..v.len() - 1], 1u64 << 10),
        'm' | 'M' => (&v[..v.len() - 1], 1u64 << 20),
        'g' | 'G' => (&v[..v.len() - 1], 1u64 << 30),
        _ => (v, 1),
    };
    digits.trim().parse::<u64>().ok().map(|n| n * mult)
}

/// Default [`ShinglingParams::par_sort_min`]: below this record count the
/// rayon fork/join overhead outweighs the parallel sort's gain, so the
/// host aggregation sorts serially.
pub const PAR_SORT_MIN: usize = 1 << 15;

fn default_par_sort_min() -> usize {
    PAR_SORT_MIN
}

/// Default [`FaultPolicy::max_retries`].
pub const MAX_RETRIES: u32 = 3;

fn default_max_retries() -> u32 {
    MAX_RETRIES
}

fn default_true() -> bool {
    true
}

/// How the device passes respond to [`gpclust_gpu::DeviceError`]s —
/// injected or real. Every recovery action is tallied in
/// [`crate::timing::RecoveryReport`]; under any fault schedule that does
/// not exhaust this policy, results stay bit-identical to a fault-free
/// host run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPolicy {
    /// Bounded re-attempts for *transient* faults (failed transfers,
    /// failed launches, ECC events) before the failing batch degrades to
    /// the host path (or errors out, if degradation is disabled).
    #[serde(default = "default_max_retries")]
    pub max_retries: u32,
    /// On `OutOfMemory`, halve the planned batch capacity and re-plan the
    /// whole pass instead of aborting. Stops (and surfaces the error) once
    /// the capacity floor of one element is reached.
    #[serde(default = "default_true")]
    pub oom_backoff: bool,
    /// Execute a batch that exhausted its retries on the bit-identical
    /// host path instead of failing the run.
    #[serde(default = "default_true")]
    pub degrade_to_host: bool,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_retries: default_max_retries(),
            oom_backoff: default_true(),
            degrade_to_host: default_true(),
        }
    }
}

impl FaultPolicy {
    /// A policy that never recovers — every device error propagates.
    /// Useful for tests asserting typed-error surfacing.
    pub fn strict() -> Self {
        FaultPolicy {
            max_retries: 0,
            oom_backoff: false,
            degrade_to_host: false,
        }
    }
}

/// Parameters of the two-pass Shingling algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShinglingParams {
    /// Shingle size for the first pass (elements per shingle).
    pub s1: usize,
    /// Number of random trials (shingles per vertex) in the first pass.
    pub c1: usize,
    /// Shingle size for the second pass.
    pub s2: usize,
    /// Number of random trials in the second pass.
    pub c2: usize,
    /// Seed for the random hash family; the whole clustering is a pure
    /// function of (graph, params).
    pub seed: u64,
    /// Device pipeline scheduling (timing model only — results are
    /// bit-identical across modes).
    #[serde(default)]
    pub mode: PipelineMode,
    /// Which top-s extraction kernel the device passes run (results are
    /// bit-identical across kernels; cost model and batch plan differ).
    #[serde(default)]
    pub kernel: ShingleKernel,
    /// Where the aggregation sort runs (results are bit-identical across
    /// modes; cost model, batch plan and host merge path differ).
    #[serde(default)]
    pub aggregation: AggregationMode,
    /// Where Phase III's inversion merge and connected components run
    /// (results are bit-identical across modes; cost model and host/device
    /// split differ).
    #[serde(default)]
    pub components: ComponentsMode,
    /// Record count at or above which host aggregation sorts switch to
    /// rayon's parallel sort. Defaults to [`PAR_SORT_MIN`]; set to 0 to
    /// force the parallel path (e.g. to exercise it on small test inputs)
    /// or to `usize::MAX` to pin the serial one.
    #[serde(default = "default_par_sort_min")]
    pub par_sort_min: usize,
    /// Recovery policy for device faults (results are bit-identical
    /// whenever the policy is not exhausted; only timing and the
    /// [`crate::timing::RecoveryReport`] tallies differ).
    #[serde(default)]
    pub fault: FaultPolicy,
    /// How the schedule axes are resolved at lowering time (results are
    /// bit-identical across plan modes; only the chosen schedule differs).
    #[serde(default)]
    pub plan: PlanMode,
    /// Out-of-core memory budget (results are bit-identical whether the
    /// pass runs resident or sharded with spilled runs; only the resident
    /// working set and the disk traffic differ).
    #[serde(default)]
    pub mem_budget: MemoryBudget,
}

impl ShinglingParams {
    /// The paper's default settings: s1 = 2, c1 = 200, s2 = 2, c2 = 100.
    pub fn paper_default(seed: u64) -> Self {
        ShinglingParams {
            s1: 2,
            c1: 200,
            s2: 2,
            c2: 100,
            seed,
            mode: PipelineMode::Synchronous,
            kernel: ShingleKernel::SortCompact,
            aggregation: AggregationMode::Host,
            components: ComponentsMode::Host,
            par_sort_min: default_par_sort_min(),
            fault: FaultPolicy::default(),
            plan: PlanMode::Manual,
            mem_budget: MemoryBudget::default(),
        }
    }

    /// A cheaper setting for unit tests and small examples.
    pub fn light(seed: u64) -> Self {
        ShinglingParams {
            s1: 2,
            c1: 40,
            s2: 2,
            c2: 20,
            seed,
            mode: PipelineMode::Synchronous,
            kernel: ShingleKernel::SortCompact,
            aggregation: AggregationMode::Host,
            components: ComponentsMode::Host,
            par_sort_min: default_par_sort_min(),
            fault: FaultPolicy::default(),
            plan: PlanMode::Manual,
            mem_budget: MemoryBudget::default(),
        }
    }

    /// This parameter set with the given pipeline mode.
    pub fn with_mode(mut self, mode: PipelineMode) -> Self {
        self.mode = mode;
        self
    }

    /// This parameter set with the given top-s extraction kernel.
    pub fn with_kernel(mut self, kernel: ShingleKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// This parameter set with the given aggregation mode.
    pub fn with_aggregation(mut self, aggregation: AggregationMode) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// This parameter set with the given components residency.
    pub fn with_components(mut self, components: ComponentsMode) -> Self {
        self.components = components;
        self
    }

    /// This parameter set with the given parallel-sort threshold.
    pub fn with_par_sort_min(mut self, par_sort_min: usize) -> Self {
        self.par_sort_min = par_sort_min;
        self
    }

    /// This parameter set with the given fault-recovery policy.
    pub fn with_fault_policy(mut self, fault: FaultPolicy) -> Self {
        self.fault = fault;
        self
    }

    /// This parameter set with the given plan-resolution mode.
    pub fn with_plan(mut self, plan: PlanMode) -> Self {
        self.plan = plan;
        self
    }

    /// This parameter set under fully automatic plan selection (no axis
    /// forced).
    pub fn with_plan_auto(self) -> Self {
        self.with_plan(PlanMode::Auto(ForcedAxes::default()))
    }

    /// This parameter set with a resident-byte budget (shard count derived
    /// from it at pass-planning time).
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget.bytes = Some(bytes);
        self
    }

    /// This parameter set with an explicit shard count for the
    /// out-of-core pass.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.mem_budget.shards = Some(shards);
        self
    }

    /// Validate invariants (positive sizes and trial counts).
    pub fn validate(&self) -> Result<(), String> {
        if self.s1 == 0 || self.s2 == 0 {
            return Err("shingle sizes must be positive".into());
        }
        if self.c1 == 0 || self.c2 == 0 {
            return Err("trial counts must be positive".into());
        }
        if self.c1.max(self.c2) > u32::MAX as usize {
            return Err("trial counts must fit u32".into());
        }
        Ok(())
    }
}

impl ShinglingParams {
    /// The hash family `H = {h_1..h_c1}` for the first-level shingling.
    ///
    /// Both the serial oracle and the GPU pipeline derive their families
    /// through these two methods, which is what makes them bit-identical.
    pub fn family_pass1(&self) -> crate::minwise::HashFamily {
        crate::minwise::HashFamily::new(self.c1, self.seed ^ 0x5041_5353_0001)
    }

    /// The hash family for the second-level shingling.
    pub fn family_pass2(&self) -> crate::minwise::HashFamily {
        crate::minwise::HashFamily::new(self.c2, self.seed ^ 0x5041_5353_0002)
    }
}

impl Default for ShinglingParams {
    fn default() -> Self {
        Self::paper_default(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_iii_d() {
        let p = ShinglingParams::paper_default(1);
        assert_eq!((p.s1, p.c1, p.s2, p.c2), (2, 200, 2, 100));
    }

    #[test]
    fn prime_is_prime_and_below_2_32() {
        // Compile-time range check (u64 literal comparison).
        const { assert!(PRIME_P < (1u64 << 32)) };
        // Trial division up to sqrt(P) ≈ 65536.
        let mut d = 2u64;
        while d * d <= PRIME_P {
            assert_ne!(PRIME_P % d, 0, "divisible by {d}");
            d += 1;
        }
    }

    #[test]
    fn mode_defaults_to_synchronous_including_serde() {
        assert_eq!(PipelineMode::default(), PipelineMode::Synchronous);
        assert_eq!(
            ShinglingParams::paper_default(3).mode,
            PipelineMode::Synchronous
        );
        // Configs written before the knob existed still deserialize.
        let legacy = r#"{"s1":2,"c1":200,"s2":2,"c2":100,"seed":7}"#;
        let p: ShinglingParams = serde_json::from_str(legacy).unwrap();
        assert_eq!(p.mode, PipelineMode::Synchronous);
        let ovl = p.with_mode(PipelineMode::Overlapped);
        assert_eq!(ovl.mode, PipelineMode::Overlapped);
        assert_eq!((ovl.s1, ovl.c1, ovl.seed), (2, 200, 7));
    }

    #[test]
    fn kernel_defaults_to_sort_compact_including_serde() {
        assert_eq!(ShingleKernel::default(), ShingleKernel::SortCompact);
        assert_eq!(
            ShinglingParams::paper_default(3).kernel,
            ShingleKernel::SortCompact
        );
        // Configs written before the knob existed still deserialize.
        let legacy = r#"{"s1":2,"c1":200,"s2":2,"c2":100,"seed":7}"#;
        let p: ShinglingParams = serde_json::from_str(legacy).unwrap();
        assert_eq!(p.kernel, ShingleKernel::SortCompact);
        let sel = p.with_kernel(ShingleKernel::FusedSelect);
        assert_eq!(sel.kernel, ShingleKernel::FusedSelect);
        assert_eq!((sel.s1, sel.c1, sel.seed), (2, 200, 7));
    }

    #[test]
    fn aggregation_defaults_to_host_including_serde() {
        assert_eq!(AggregationMode::default(), AggregationMode::Host);
        assert_eq!(
            ShinglingParams::paper_default(3).aggregation,
            AggregationMode::Host
        );
        // Configs written before the knob existed still deserialize.
        let legacy = r#"{"s1":2,"c1":200,"s2":2,"c2":100,"seed":7}"#;
        let p: ShinglingParams = serde_json::from_str(legacy).unwrap();
        assert_eq!(p.aggregation, AggregationMode::Host);
        assert_eq!(p.par_sort_min, PAR_SORT_MIN);
        let dev = p.with_aggregation(AggregationMode::Device);
        assert_eq!(dev.aggregation, AggregationMode::Device);
        assert_eq!((dev.s1, dev.c1, dev.seed), (2, 200, 7));
        assert_eq!(dev.with_par_sort_min(0).par_sort_min, 0);
    }

    #[test]
    fn components_default_to_host_including_serde() {
        assert_eq!(ComponentsMode::default(), ComponentsMode::Host);
        assert_eq!(
            ShinglingParams::paper_default(3).components,
            ComponentsMode::Host
        );
        // Configs written before the knob existed still deserialize.
        let legacy = r#"{"s1":2,"c1":200,"s2":2,"c2":100,"seed":7}"#;
        let p: ShinglingParams = serde_json::from_str(legacy).unwrap();
        assert_eq!(p.components, ComponentsMode::Host);
        let dev = p.with_components(ComponentsMode::Device);
        assert_eq!(dev.components, ComponentsMode::Device);
        assert_eq!((dev.s1, dev.c1, dev.seed), (2, 200, 7));
    }

    #[test]
    fn fault_policy_defaults_including_serde() {
        let d = FaultPolicy::default();
        assert_eq!(d.max_retries, MAX_RETRIES);
        assert!(d.oom_backoff);
        assert!(d.degrade_to_host);
        // Configs written before the knob existed still deserialize
        // (skipped under a stub serde_json that cannot parse).
        let legacy = r#"{"s1":2,"c1":200,"s2":2,"c2":100,"seed":7}"#;
        if let Ok(p) = serde_json::from_str::<ShinglingParams>(legacy) {
            assert_eq!(p.fault, FaultPolicy::default());
        }
        let strict = ShinglingParams::paper_default(3).with_fault_policy(FaultPolicy::strict());
        assert_eq!(strict.fault.max_retries, 0);
        assert!(!strict.fault.oom_backoff);
        assert!(!strict.fault.degrade_to_host);
    }

    #[test]
    fn plan_mode_defaults_to_manual_including_serde() {
        assert_eq!(PlanMode::default(), PlanMode::Manual);
        assert_eq!(ShinglingParams::paper_default(3).plan, PlanMode::Manual);
        // Configs written before the knob existed still deserialize
        // (skipped under a stub serde_json that cannot parse).
        let legacy = r#"{"s1":2,"c1":200,"s2":2,"c2":100,"seed":7}"#;
        if let Ok(p) = serde_json::from_str::<ShinglingParams>(legacy) {
            assert_eq!(p.plan, PlanMode::Manual);
        }
        let auto = ShinglingParams::paper_default(3).with_plan_auto();
        assert_eq!(auto.plan, PlanMode::Auto(ForcedAxes::default()));
        assert!(!ForcedAxes::default().kernel);
        let pinned = auto.with_plan(PlanMode::Auto(ForcedAxes {
            kernel: true,
            ..Default::default()
        }));
        match pinned.plan {
            PlanMode::Auto(f) => assert!(f.kernel && !f.mode && !f.aggregation && !f.components),
            m => panic!("expected auto, got {m:?}"),
        }
    }

    #[test]
    fn mem_budget_defaults_to_unbounded_including_serde() {
        assert!(MemoryBudget::default().is_unbounded());
        assert!(ShinglingParams::paper_default(3).mem_budget.is_unbounded());
        // Configs written before the knob existed still deserialize
        // (skipped under a stub serde_json that cannot parse).
        let legacy = r#"{"s1":2,"c1":200,"s2":2,"c2":100,"seed":7}"#;
        if let Ok(p) = serde_json::from_str::<ShinglingParams>(legacy) {
            assert!(p.mem_budget.is_unbounded());
        }
        let b = ShinglingParams::paper_default(3).with_mem_budget(1 << 20);
        assert_eq!(b.mem_budget.bytes, Some(1 << 20));
        assert!(!b.mem_budget.is_unbounded());
        let s = b.with_shards(4);
        assert_eq!(s.mem_budget.shards, Some(4));
    }

    #[test]
    fn mem_budget_shard_resolution() {
        // An explicit shard count wins over the byte derivation …
        let forced = MemoryBudget {
            bytes: Some(1),
            shards: Some(3),
        };
        assert_eq!(forced.resolve_shards(1 << 30, 16), 3);
        // … and both are clamped to the batch count.
        assert_eq!(forced.resolve_shards(1 << 30, 2), 2);
        let by_bytes = MemoryBudget {
            bytes: Some(100),
            shards: None,
        };
        assert_eq!(by_bytes.resolve_shards(100, 16), 1);
        assert_eq!(by_bytes.resolve_shards(101, 16), 2);
        assert_eq!(by_bytes.resolve_shards(1000, 16), 10);
        assert_eq!(by_bytes.resolve_shards(10_000, 16), 16);
        assert_eq!(MemoryBudget::default().resolve_shards(1 << 40, 16), 1);
    }

    #[test]
    fn parse_bytes_accepts_suffixes() {
        assert_eq!(parse_bytes("123"), Some(123));
        assert_eq!(parse_bytes("4k"), Some(4096));
        assert_eq!(parse_bytes("64M"), Some(64 << 20));
        assert_eq!(parse_bytes("2G"), Some(2 << 30));
        assert_eq!(parse_bytes(" 8 M "), Some(8 << 20));
        assert_eq!(parse_bytes("x"), None);
        assert_eq!(parse_bytes(""), None);
    }

    #[test]
    fn validation_rejects_degenerate_params() {
        let mut p = ShinglingParams::paper_default(0);
        assert!(p.validate().is_ok());
        p.s1 = 0;
        assert!(p.validate().is_err());
        p = ShinglingParams::paper_default(0);
        p.c2 = 0;
        assert!(p.validate().is_err());
    }
}
