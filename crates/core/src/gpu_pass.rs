//! Internal device-pass helpers shared by the [`crate::exec`] executor.
//!
//! This module used to enumerate the schedule cross-product as ~13
//! public `gpu_shingle_pass*` entry points; those collapsed into the
//! single [`crate::exec::Executor::run`] interpreter over a
//! [`crate::plan::PassPlan`]. What remains here is the trial-invariant
//! batch arithmetic and the device-aggregation machinery both executor
//! loop bodies compose:
//!
//! * [`BatchPlan`]/[`plan_batch`] — one batch's segment offsets, fragment
//!   flags, compaction output layout, and task groups, computed once and
//!   reused across trials. Interior segments shorter than `s` are skipped
//!   (they can never yield a shingle); boundary segments are kept
//!   regardless, because they may be fragments of lists split across
//!   batches (possibly across devices).
//! * [`compaction_tasks`] — step 2c of Algorithm 1: copy each kept
//!   segment's sorted prefix into the dense output buffer.
//! * [`host_trial_out`] — the degradation path: one `(batch, trial)` on
//!   the CPU, producing **exactly the bytes** the device pipeline's D2H
//!   would have delivered, so records stay bit-identical under faults.
//! * [`RecordSink`]/[`DeviceRunBuilder`] — the device-side aggregation
//!   front end: finalized records stage in a stride-`s + 2` column and
//!   flush through a pack kernel + u128 radix sort into
//!   [`SortedRun`]s for the streaming k-way host merge.

// The refactor deletes superseded entry points rather than deprecating
// them; anything unreferenced in here is a bug.
#![deny(dead_code)]

use crate::aggregate::SortedRun;
use crate::batch::Batch;
use crate::minwise::{hash_with, pack, unpack_element};
use crate::params::FaultPolicy;
use crate::resilience::retry_transient;
use crate::shingle::shingle_key;
use crate::timing::RecoveryReport;
use gpclust_gpu::{thrust, DeviceError, Gpu, KernelCost, Stream};
use std::time::Instant;

/// Trial-invariant shape of one batch, computed once up front: segment
/// offsets, fragment flags, compaction output layout and task groups.
pub(crate) struct BatchPlan {
    pub(crate) local_offsets: Vec<u64>,
    pub(crate) nodes: Vec<u32>,
    pub(crate) first_frag: bool,
    pub(crate) last_frag: bool,
    /// Per-segment output slot offsets (`n_segs + 1` values).
    pub(crate) out_offsets: Vec<usize>,
    pub(crate) out_total: usize,
    /// Segments that emit at least one pair.
    pub(crate) emit_segs: Vec<u32>,
    /// Compaction task groups: contiguous segment ranges covering
    /// ~`GROUP_OUT` output elements each.
    pub(crate) groups: Vec<(usize, usize)>,
}

/// Output elements per compaction task (one thread-block-batch per group,
/// not per segment).
const GROUP_OUT: usize = 64 * 1024;

pub(crate) fn plan_batch(batch: &Batch, offsets: &[u64], s: usize) -> BatchPlan {
    let (local_offsets, nodes) = batch.segments(offsets);
    // Loop-invariant fragment flags, computed once per batch (not per
    // segment): which segments can contribute — interior segments need
    // ≥ s elements; the first/last segment may be a fragment and is always
    // kept (its |list| may exceed s globally).
    let first_frag = batch.first_is_fragment(offsets);
    let last_frag = batch.last_is_fragment(offsets);
    let n_segs = nodes.len();
    let mut out_offsets = Vec::with_capacity(n_segs + 1);
    out_offsets.push(0usize);
    for i in 0..n_segs {
        let len = (local_offsets[i + 1] - local_offsets[i]) as usize;
        let boundary = (i == 0 && first_frag) || (i == n_segs - 1 && last_frag);
        let k = if boundary || len >= s { len.min(s) } else { 0 };
        out_offsets.push(out_offsets[i] + k);
    }
    let out_total = out_offsets[n_segs];
    let emit_segs: Vec<u32> = (0..n_segs)
        .filter(|&i| out_offsets[i + 1] > out_offsets[i])
        .map(|i| i as u32)
        .collect();
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < n_segs {
        let start_out = out_offsets[i];
        let mut j = i + 1;
        while j < n_segs && out_offsets[j + 1] - start_out < GROUP_OUT {
            j += 1;
        }
        groups.push((i, j));
        i = j;
    }
    BatchPlan {
        local_offsets,
        nodes,
        first_frag,
        last_frag,
        out_offsets,
        out_total,
        emit_segs,
        groups,
    }
}

/// Build the compaction tasks extracting the top `k` pairs of each kept
/// segment of `src` into the dense `dst` (one task per plan group).
pub(crate) fn compaction_tasks<'a>(
    plan: &'a BatchPlan,
    src: &'a [u64],
    dst: &'a mut [u64],
) -> Vec<Box<dyn FnOnce() + Send + 'a>> {
    let mut tasks: Vec<Box<dyn FnOnce() + Send + 'a>> = Vec::with_capacity(plan.groups.len());
    let mut rest = dst;
    for &(i, j) in &plan.groups {
        let start_out = plan.out_offsets[i];
        let group_k = plan.out_offsets[j] - start_out;
        let (head, tail) = rest.split_at_mut(group_k);
        rest = tail;
        let out_offsets = &plan.out_offsets;
        let local_offsets = &plan.local_offsets;
        tasks.push(Box::new(move || {
            for seg in i..j {
                let k = out_offsets[seg + 1] - out_offsets[seg];
                if k == 0 {
                    continue;
                }
                let seg_lo = local_offsets[seg] as usize;
                head[out_offsets[seg] - start_out..out_offsets[seg + 1] - start_out]
                    .copy_from_slice(&src[seg_lo..seg_lo + k]);
            }
        }));
    }
    tasks
}

/// Host execution of one `(batch, trial)`: the degradation path a batch
/// falls back to when its device retries are exhausted. Produces **exactly
/// the bytes** the device pipeline's D2H would have delivered — per kept
/// segment, the ascending sorted prefix of the packed
/// `(h_i(v) << 32) | v` permutation (what `SortCompact` compacts and
/// `FusedSelect` selects) — so every record downstream is bit-identical
/// to a fault-free run.
pub(crate) fn host_trial_out(plan: &BatchPlan, elems: &[u32], a: u64, b: u64) -> Vec<u64> {
    let mut out = vec![0u64; plan.out_total];
    for i in 0..plan.nodes.len() {
        let k = plan.out_offsets[i + 1] - plan.out_offsets[i];
        if k == 0 {
            continue;
        }
        let lo = plan.local_offsets[i] as usize;
        let hi = plan.local_offsets[i + 1] as usize;
        let mut seg: Vec<u64> = elems[lo..hi]
            .iter()
            .map(|&v| pack(hash_with(a, b, v), v))
            .collect();
        seg.sort_unstable();
        out[plan.out_offsets[i]..plan.out_offsets[i + 1]].copy_from_slice(&seg[..k]);
    }
    out
}

/// Where a device pass's finalized `(trial, node, top-s pairs)` records
/// go when they need device-side processing. The [`DeviceRunBuilder`]
/// impl may flush staged records through a device pack + radix sort
/// whenever it records (capacity trigger) or at a batch boundary — which
/// is why both hooks see the [`Gpu`] and the optional stream pair.
pub(crate) trait RecordSink {
    fn record(
        &mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
        trial: u32,
        node: u32,
        pairs: &[u64],
    ) -> Result<(), DeviceError>;

    /// Called once per batch, after the batch's per-trial device buffers
    /// have been dropped (so a flush has the freed memory to work with)
    /// but while the next batch's prefetch may still be staged.
    fn batch_end(
        &mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
    ) -> Result<(), DeviceError>;
}

/// Records per device pack task (one thread-block-batch per chunk).
const PACK_CHUNK: usize = 4 * 1024;

/// Device-side aggregation front end: stages finalized records, then
/// packs and radix-sorts them **on the device** into [`SortedRun`]s that a
/// k-way host merge ([`crate::aggregate::merge_sorted_runs`]) consumes
/// record-by-record. This replaces the host's giant global
/// `par_sort_unstable` over all `c·n` records — the step behind the CPU
/// column's ~79% share in Table I — with a `thrust::sort_by_key`-style
/// sort per flush plus an O(|E′| log r) streaming merge.
///
/// ## Staging and run sizing
///
/// Each record stages as a stride-`s + 2` u32 column `[trial, node,
/// e_0..e_{s-1}]`. A flush uploads the column, launches a pack kernel
/// computing `(shingle_key << 64) | (node << 32) | run_local_idx` per
/// record (the same 128-bit key the host oracle sorts), radix-sorts the
/// u128s ([`thrust::sort_pairs`] — two 64-bit `sort_by_key` passes), and
/// downloads the sorted run. Flushes trigger when the staged count
/// reaches `run_capacity` and at every batch boundary; `run_capacity` is
/// sized so the column (`4·(s+2)` B/record) and the packed buffer (16
/// B/record) together fit the extra 16 B/element the
/// [`crate::params::AggregationMode::Device`] batch footprint reserves
/// ([`crate::batch::bytes_per_elem`]).
///
/// In the simulator the staged key material lives host-side (the
/// boundary-fragment merge is a host step), so a flush re-uploads it; a
/// native implementation would pack interior records straight from the
/// device-resident per-trial output. The modeled H2D cost charged here is
/// therefore conservative.
///
/// ## Bit-identity with host aggregation
///
/// Flush boundaries cut the emission sequence into contiguous slices, so
/// run order = emission order, and each run is ascending in the full
/// 128-bit record. The k-way merge keyed on `((packed >> 32), run_idx)`
/// then replays exactly the host oracle's `(key, node, global emission
/// idx)` order. An out-of-memory flush falls back to packing and sorting
/// the same records on the host — also a total-order ascending u128 sort,
/// hence bit-identical.
pub(crate) struct DeviceRunBuilder {
    s: usize,
    /// Interleaved staging column, stride `s + 2`.
    col: Vec<u32>,
    run_capacity: usize,
    runs: Vec<SortedRun>,
    agg_kernel_seconds: f64,
    host_fallbacks: u64,
    policy: FaultPolicy,
    recovery: RecoveryReport,
}

impl DeviceRunBuilder {
    /// `capacity` is the pass's per-batch element budget: the run size is
    /// derived from the 16 B/element device-aggregation reserve it
    /// implies. `policy` governs flush-time retries and host fallback.
    pub(crate) fn with_policy(s: usize, capacity: usize, policy: FaultPolicy) -> Self {
        let per_record = 16 + 4 * (s + 2);
        DeviceRunBuilder {
            s,
            col: Vec::new(),
            run_capacity: ((16 * capacity) / per_record).max(1),
            runs: Vec::new(),
            agg_kernel_seconds: 0.0,
            host_fallbacks: 0,
            policy,
            recovery: RecoveryReport::default(),
        }
    }

    /// Staged-but-unflushed record count.
    fn staged(&self) -> usize {
        self.col.len() / (self.s + 2)
    }

    /// Stage one record; the caller decides when to flush (the
    /// [`RecordSink`] impl flushes at `run_capacity` and on `batch_end`).
    fn push(&mut self, trial: u32, node: u32, pairs: &[u64]) {
        debug_assert_eq!(pairs.len(), self.s);
        self.col.reserve(self.s + 2);
        self.col.push(trial);
        self.col.push(node);
        self.col.extend(pairs.iter().map(|&p| unpack_element(p)));
    }

    /// Pack + sort the staged records into one [`SortedRun`].
    fn flush(&mut self, gpu: &Gpu, streams: Option<(&Stream, &Stream)>) -> Result<(), DeviceError> {
        let stride = self.s + 2;
        let n = self.col.len() / stride;
        if n == 0 {
            return Ok(());
        }
        let col = std::mem::take(&mut self.col);
        let elements: Vec<u32> = col
            .chunks_exact(stride)
            .flat_map(|rec| rec[2..].iter().copied())
            .collect();
        let attempt = retry_transient(&self.policy, &mut self.recovery, || {
            device_pack_sort(gpu, streams, &col, n, stride)
        });
        let packed = match attempt {
            Ok((packed, agg_seconds)) => {
                self.agg_kernel_seconds += agg_seconds;
                packed
            }
            Err(e)
                if matches!(e, DeviceError::OutOfMemory { .. }) || self.policy.degrade_to_host =>
            {
                // Same total-order ascending sort on the host: the run's
                // bytes are identical, only the modeled time lands on the
                // CPU instead. Memory pressure always takes this path
                // (the flush is sized to fit, so OOM here is structural);
                // exhausted transient retries take it when the policy
                // allows degradation.
                self.host_fallbacks += 1;
                let t0 = Instant::now();
                let packed = host_pack_sort(&col, stride);
                self.recovery.recovery_seconds += t0.elapsed().as_secs_f64();
                packed
            }
            Err(e) => return Err(e),
        };
        self.runs.push(SortedRun { packed, elements });
        Ok(())
    }

    /// Flush any staged tail and return the sorted runs, the modeled
    /// device seconds the aggregation kernels consumed, and the builder's
    /// [`RecoveryReport`] with `host_fallbacks` folded in.
    pub(crate) fn finish_with_recovery(
        mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
    ) -> Result<(Vec<SortedRun>, f64, RecoveryReport), DeviceError> {
        self.flush(gpu, streams)?;
        let mut recovery = self.recovery;
        recovery.host_fallbacks += self.host_fallbacks;
        Ok((self.runs, self.agg_kernel_seconds, recovery))
    }
}

/// One flush's device work: column up, pack kernel, u128 radix sort,
/// sorted run down. Returns the run plus the modeled device seconds the
/// aggregation kernels consumed. A free function (not a method) so the
/// flush can re-run it under [`retry_transient`] without borrowing the
/// builder twice; idempotent because every buffer is recomputed from
/// `col`.
fn device_pack_sort(
    gpu: &Gpu,
    streams: Option<(&Stream, &Stream)>,
    col: &[u32],
    n: usize,
    stride: usize,
) -> Result<(Vec<u128>, f64), DeviceError> {
    let pack_cost = KernelCost::transform();
    let agg_seconds = gpu.model_kernel_seconds(n, &pack_cost)
        + gpu.model_kernel_seconds(n, &KernelCost::pair_sort());
    if let Some((compute, copy)) = streams {
        // Column up on the copy stream (overlaps earlier compute),
        // pack + sort on the compute stream, sorted run back on the
        // copy stream — overlapping the next batch's kernels exactly
        // like the per-trial D2H does.
        let col_dev = copy.htod_async(col)?;
        compute.wait_event(&copy.record_event());
        let mut packed_dev = gpu.alloc::<u128>(n)?;
        let tasks = pack_tasks(
            col_dev.device_slice(),
            packed_dev.device_slice_mut(),
            stride,
        );
        compute.launch(n, &pack_cost, tasks);
        thrust::sort_pairs_on(compute, &mut packed_dev);
        copy.wait_event(&compute.record_event());
        let packed = copy.try_dtoh_async(&packed_dev)?;
        Ok((packed, agg_seconds))
    } else {
        let col_dev = gpu.htod(col)?;
        let mut packed_dev = gpu.alloc::<u128>(n)?;
        let tasks = pack_tasks(
            col_dev.device_slice(),
            packed_dev.device_slice_mut(),
            stride,
        );
        gpu.launch(n, &pack_cost, tasks);
        thrust::sort_pairs(gpu, &mut packed_dev);
        let packed = gpu.try_dtoh(&packed_dev)?;
        Ok((packed, agg_seconds))
    }
}

impl RecordSink for DeviceRunBuilder {
    fn record(
        &mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
        trial: u32,
        node: u32,
        pairs: &[u64],
    ) -> Result<(), DeviceError> {
        self.push(trial, node, pairs);
        if self.staged() >= self.run_capacity {
            self.flush(gpu, streams)?;
        }
        Ok(())
    }

    fn batch_end(
        &mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
    ) -> Result<(), DeviceError> {
        self.flush(gpu, streams)
    }
}

/// Device pack kernel: one task per [`PACK_CHUNK`] records, each
/// computing the 128-bit sort record from the staged column.
fn pack_tasks<'a>(
    col: &'a [u32],
    out: &'a mut [u128],
    stride: usize,
) -> Vec<Box<dyn FnOnce() + Send + 'a>> {
    out.chunks_mut(PACK_CHUNK)
        .enumerate()
        .map(|(ci, dst)| {
            let base = ci * PACK_CHUNK;
            Box::new(move || {
                for (k, d) in dst.iter_mut().enumerate() {
                    let r = base + k;
                    let rec = &col[r * stride..(r + 1) * stride];
                    let key = shingle_key(rec[0], rec[2..].iter().copied());
                    *d = ((key as u128) << 64) | ((rec[1] as u128) << 32) | r as u128;
                }
            }) as Box<dyn FnOnce() + Send + 'a>
        })
        .collect()
}

/// Host fallback of the pack + sort, used when a flush cannot get device
/// memory. Identical bytes: same key computation, same ascending total
/// order.
fn host_pack_sort(col: &[u32], stride: usize) -> Vec<u128> {
    let mut packed: Vec<u128> = col
        .chunks_exact(stride)
        .enumerate()
        .map(|(r, rec)| {
            let key = shingle_key(rec[0], rec[2..].iter().copied());
            ((key as u128) << 64) | ((rec[1] as u128) << 32) | r as u128
        })
        .collect();
    packed.sort_unstable();
    packed
}
