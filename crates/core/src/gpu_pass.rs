//! Algorithm 1 — one shingling pass on the (simulated) device.
//!
//! Per batch of adjacency lists (Figure 4):
//!
//! 1. the batch's concatenated elements move host→device once;
//! 2. for each random trial `h_i ∈ H`, one of two kernel plans extracts
//!    the top `min(s, |segment|)` pairs of each kept segment into a dense
//!    output buffer (see [`ShingleKernel`]):
//!    * [`ShingleKernel::SortCompact`] — the paper's pipeline:
//!      a. `thrust::transform` maps every element `v` to the packed pair
//!      `(h_i(v) << 32) | v` — the random permutation of each list;
//!      b. a segmented sort orders every list by permuted value;
//!      c. a compaction kernel copies each segment's sorted prefix.
//!    * [`ShingleKernel::FusedSelect`] — one fused kernel hashes each
//!      element on the fly and maintains an s-sized insertion buffer per
//!      segment, writing the selected pairs (ascending — exactly the
//!      sorted prefix the compaction would have copied) straight to the
//!      output buffer. No 8-byte packed workspace exists, so
//!      [`batch_capacity`] plans ~2× larger batches, halving batch count,
//!      transfer invocations, and kernel launches on memory-bound inputs.
//! 3. the output moves device→host immediately ("it is safe to
//!    transfer the generated shingles back to the host memory after each
//!    iteration for the immediate processing on the CPU side") — this
//!    per-trial D2H traffic is why *Data g→c* dominates the transfer
//!    budget in Table I.
//!
//! Interior segments shorter than `s` are skipped (they can never yield a
//! shingle); boundary segments are kept regardless, because they may be
//! fragments of lists split across batches. Fragments are merged here on
//! the host, per trial, as each batch's results arrive — so the records
//! handed to [`crate::aggregate`] are already one-per-(node, trial)
//! ("grouped"), which lets the aggregation skip its merge sort.
//!
//! Both kernels emit **bit-identical records**: shingling only consumes
//! the `s` smallest permuted values of each list, and the ascending
//! s-smallest selection equals the sorted prefix, duplicates included.
//! The batch plan depends on the kernel's per-element footprint, so
//! cross-kernel runs agree record-for-record whenever they share a
//! capacity (see the `_with_capacity` entry points) and always agree
//! after aggregation.
//!
//! ## Synchronous vs. overlapped scheduling
//!
//! The pass runs under two schedules that produce **bit-identical
//! records** and differ only in the modeled device timing:
//!
//! * [`gpu_shingle_pass_foreach`] — the paper's Thrust 1.5 behavior: every
//!   copy blocks, so H2D → kernels → D2H serialize on one timeline.
//! * [`gpu_shingle_pass_overlapped_foreach`] — a double-buffered pipeline
//!   over two [`Stream`]s: batch *k+1*'s elements upload on the copy
//!   stream while batch *k*'s trials run on the compute stream, and each
//!   trial's compacted output transfers back (and is merged/emitted on the
//!   host) while the next trial's kernels execute. The returned makespan —
//!   the max of the two stream cursors — is the pipelined critical path
//!   that the paper's "asynchronous operations provided in CUDA C/C++"
//!   future work would buy.
//!
//! ## Host vs. device aggregation
//!
//! Orthogonal to both axes above, [`AggregationMode`] decides where the
//! emitted records get **sorted**. `Host` streams them into
//! [`crate::aggregate::StreamAggregator`]'s global host sort; `Device`
//! routes them through a [`DeviceRunBuilder`] that packs and radix-sorts
//! them on the card and hands back per-flush [`SortedRun`]s for a
//! streaming k-way host merge ([`crate::aggregate::merge_sorted_runs`]) —
//! same partitions, bit-identical record order, but the dominant
//! `O(c·n log c·n)` comparison sort moves off the CPU column of Table I.

use crate::aggregate::SortedRun;
use crate::batch::{batch_capacity, plan_batches, Batch, BatchStats};
use crate::minwise::{hash_with, pack, unpack_element, HashFamily};
use crate::params::{AggregationMode, FaultPolicy, PipelineMode, ShingleKernel};
use crate::resilience::retry_transient;
use crate::shingle::{shingle_key, AdjacencyInput, RawShingles};
use crate::timing::RecoveryReport;
use gpclust_gpu::{thrust, DeviceBuffer, DeviceError, Gpu, KernelCost, Stream, StreamEvent};
use std::time::Instant;

/// Trial-invariant shape of one batch, computed once up front: segment
/// offsets, fragment flags, compaction output layout and task groups.
/// `pub(crate)` so `multi_gpu` shares the exact same layout arithmetic.
pub(crate) struct BatchPlan {
    pub(crate) local_offsets: Vec<u64>,
    pub(crate) nodes: Vec<u32>,
    pub(crate) first_frag: bool,
    pub(crate) last_frag: bool,
    /// Per-segment output slot offsets (`n_segs + 1` values).
    pub(crate) out_offsets: Vec<usize>,
    pub(crate) out_total: usize,
    /// Segments that emit at least one pair.
    pub(crate) emit_segs: Vec<u32>,
    /// Compaction task groups: contiguous segment ranges covering
    /// ~`GROUP_OUT` output elements each.
    pub(crate) groups: Vec<(usize, usize)>,
}

/// Output elements per compaction task (one thread-block-batch per group,
/// not per segment).
const GROUP_OUT: usize = 64 * 1024;

pub(crate) fn plan_batch(batch: &Batch, offsets: &[u64], s: usize) -> BatchPlan {
    let (local_offsets, nodes) = batch.segments(offsets);
    // Loop-invariant fragment flags, computed once per batch (not per
    // segment): which segments can contribute — interior segments need
    // ≥ s elements; the first/last segment may be a fragment and is always
    // kept (its |list| may exceed s globally).
    let first_frag = batch.first_is_fragment(offsets);
    let last_frag = batch.last_is_fragment(offsets);
    let n_segs = nodes.len();
    let mut out_offsets = Vec::with_capacity(n_segs + 1);
    out_offsets.push(0usize);
    for i in 0..n_segs {
        let len = (local_offsets[i + 1] - local_offsets[i]) as usize;
        let boundary = (i == 0 && first_frag) || (i == n_segs - 1 && last_frag);
        let k = if boundary || len >= s { len.min(s) } else { 0 };
        out_offsets.push(out_offsets[i] + k);
    }
    let out_total = out_offsets[n_segs];
    let emit_segs: Vec<u32> = (0..n_segs)
        .filter(|&i| out_offsets[i + 1] > out_offsets[i])
        .map(|i| i as u32)
        .collect();
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < n_segs {
        let start_out = out_offsets[i];
        let mut j = i + 1;
        while j < n_segs && out_offsets[j + 1] - start_out < GROUP_OUT {
            j += 1;
        }
        groups.push((i, j));
        i = j;
    }
    BatchPlan {
        local_offsets,
        nodes,
        first_frag,
        last_frag,
        out_offsets,
        out_total,
        emit_segs,
        groups,
    }
}

/// Build the compaction tasks extracting the top `k` pairs of each kept
/// segment of `src` into the dense `dst` (one task per plan group).
pub(crate) fn compaction_tasks<'a>(
    plan: &'a BatchPlan,
    src: &'a [u64],
    dst: &'a mut [u64],
) -> Vec<Box<dyn FnOnce() + Send + 'a>> {
    let mut tasks: Vec<Box<dyn FnOnce() + Send + 'a>> = Vec::with_capacity(plan.groups.len());
    let mut rest = dst;
    for &(i, j) in &plan.groups {
        let start_out = plan.out_offsets[i];
        let group_k = plan.out_offsets[j] - start_out;
        let (head, tail) = rest.split_at_mut(group_k);
        rest = tail;
        let out_offsets = &plan.out_offsets;
        let local_offsets = &plan.local_offsets;
        tasks.push(Box::new(move || {
            for seg in i..j {
                let k = out_offsets[seg + 1] - out_offsets[seg];
                if k == 0 {
                    continue;
                }
                let seg_lo = local_offsets[seg] as usize;
                head[out_offsets[seg] - start_out..out_offsets[seg + 1] - start_out]
                    .copy_from_slice(&src[seg_lo..seg_lo + k]);
            }
        }));
    }
    tasks
}

/// Host execution of one `(batch, trial)`: the degradation path a batch
/// falls back to when its device retries are exhausted. Produces **exactly
/// the bytes** the device pipeline's D2H would have delivered — per kept
/// segment, the ascending sorted prefix of the packed
/// `(h_i(v) << 32) | v` permutation (what `SortCompact` compacts and
/// `FusedSelect` selects) — so every record downstream is bit-identical
/// to a fault-free run.
pub(crate) fn host_trial_out(plan: &BatchPlan, elems: &[u32], a: u64, b: u64) -> Vec<u64> {
    let mut out = vec![0u64; plan.out_total];
    for i in 0..plan.nodes.len() {
        let k = plan.out_offsets[i + 1] - plan.out_offsets[i];
        if k == 0 {
            continue;
        }
        let lo = plan.local_offsets[i] as usize;
        let hi = plan.local_offsets[i + 1] as usize;
        let mut seg: Vec<u64> = elems[lo..hi]
            .iter()
            .map(|&v| pack(hash_with(a, b, v), v))
            .collect();
        seg.sort_unstable();
        out[plan.out_offsets[i]..plan.out_offsets[i + 1]].copy_from_slice(&seg[..k]);
    }
    out
}

/// Where a device pass's finalized `(trial, node, top-s pairs)` records
/// go. `Host` aggregation (and pass II's union–find streaming) uses the
/// [`FnSink`] closure adapter; `Device` aggregation uses a
/// [`DeviceRunBuilder`] that may flush staged records through a device
/// pack + radix sort whenever it records (capacity trigger) or at a batch
/// boundary — which is why both hooks see the [`Gpu`] and the optional
/// stream pair.
pub trait RecordSink {
    fn record(
        &mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
        trial: u32,
        node: u32,
        pairs: &[u64],
    ) -> Result<(), DeviceError>;

    /// Called once per batch, after the batch's per-trial device buffers
    /// have been dropped (so a flush has the freed memory to work with)
    /// but while the next batch's prefetch may still be staged.
    fn batch_end(
        &mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
    ) -> Result<(), DeviceError>;
}

/// Adapts a plain `FnMut(trial, node, pairs)` closure — the host
/// aggregation path — to [`RecordSink`]. Infallible; `batch_end` is a
/// no-op.
pub struct FnSink<F>(pub F);

impl<F: FnMut(u32, u32, &[u64])> RecordSink for FnSink<F> {
    fn record(
        &mut self,
        _gpu: &Gpu,
        _streams: Option<(&Stream, &Stream)>,
        trial: u32,
        node: u32,
        pairs: &[u64],
    ) -> Result<(), DeviceError> {
        (self.0)(trial, node, pairs);
        Ok(())
    }

    fn batch_end(
        &mut self,
        _gpu: &Gpu,
        _streams: Option<(&Stream, &Stream)>,
    ) -> Result<(), DeviceError> {
        Ok(())
    }
}

/// CPU-side record building for one trial's host output, with
/// boundary-fragment merging ("the CPU has to combine the shingle results
/// for the split adjacency lists after it receives shingles from the GPU").
#[allow(clippy::too_many_arguments)] // internal per-trial helper of run_device_pass
fn emit_trial_records<S: RecordSink>(
    plan: &BatchPlan,
    host_out: &[u64],
    trial: usize,
    s: usize,
    carry: &mut [Vec<u64>],
    carry_node: Option<u32>,
    gpu: &Gpu,
    streams: Option<(&Stream, &Stream)>,
    sink: &mut S,
) -> Result<(), DeviceError> {
    let n_segs = plan.nodes.len();
    for &seg in &plan.emit_segs {
        let i = seg as usize;
        let lo = plan.out_offsets[i];
        let hi = plan.out_offsets[i + 1];
        let pairs = &host_out[lo..hi];
        let is_first = i == 0;
        let is_last = i == n_segs - 1;
        if is_first && plan.first_frag {
            debug_assert_eq!(carry_node, Some(plan.nodes[i]));
            let mut merged = std::mem::take(&mut carry[trial]);
            merged.extend_from_slice(pairs);
            merged.sort_unstable();
            merged.dedup();
            merged.truncate(s);
            if is_last && plan.last_frag {
                carry[trial] = merged; // list continues further
            } else if merged.len() == s {
                sink.record(gpu, streams, trial as u32, plan.nodes[i], &merged)?;
            }
        } else if is_last && plan.last_frag {
            carry[trial] = pairs.to_vec();
        } else if pairs.len() == s {
            sink.record(gpu, streams, trial as u32, plan.nodes[i], pairs)?;
        }
    }
    Ok(())
}

/// One trial's device execution: allocate the dense output, run the
/// kernel plan, and copy the result back via the *fallible* transfers —
/// the sync point where injected kernel faults surface. Idempotent:
/// every buffer it writes is recomputed from `elems_dev`, so
/// [`retry_transient`] can re-run it after a transient fault and get
/// bit-identical bytes.
#[allow(clippy::too_many_arguments)] // internal per-trial helper of run_device_pass
fn device_trial(
    gpu: &Gpu,
    streams: Option<(&Stream, &Stream)>,
    kernel: ShingleKernel,
    plan: &BatchPlan,
    elems_dev: &DeviceBuffer<u32>,
    packed_dev: &mut Option<DeviceBuffer<u64>>,
    a: u64,
    b: u64,
    prev_out: &mut Option<DeviceBuffer<u64>>,
    staged: &mut Option<(DeviceBuffer<u32>, StreamEvent)>,
) -> Result<Vec<u64>, DeviceError> {
    // The previous trial's output has drained by now; free it before
    // allocating the next so peak memory holds at most one in-flight
    // output buffer.
    *prev_out = None;
    let mut out_dev = match gpu.alloc::<u64>(plan.out_total) {
        Ok(buf) => buf,
        Err(DeviceError::OutOfMemory { .. }) if staged.is_some() => {
            // Memory pressure: give the prefetched batch back (it will
            // re-upload next iteration) and retry.
            *staged = None;
            gpu.alloc::<u64>(plan.out_total)?
        }
        Err(e) => return Err(e),
    };
    match (kernel, packed_dev) {
        (ShingleKernel::SortCompact, Some(packed_dev)) => {
            // 2a. Random permutation via the min-wise hash, then
            // 2b. segmented sort within each adjacency list, then
            // 2c. compact the top-s pairs of each kept segment.
            if let Some((compute, _)) = streams {
                thrust::transform_on(compute, elems_dev, packed_dev, move |v: u32| {
                    pack(hash_with(a, b, v), v)
                });
                thrust::segmented_sort_on(compute, packed_dev, &plan.local_offsets);
            } else {
                thrust::transform(gpu, elems_dev, packed_dev, move |v: u32| {
                    pack(hash_with(a, b, v), v)
                });
                thrust::segmented_sort(gpu, packed_dev, &plan.local_offsets);
            }
            let tasks =
                compaction_tasks(plan, packed_dev.device_slice(), out_dev.device_slice_mut());
            if let Some((compute, _)) = streams {
                compute.launch(plan.out_total, &KernelCost::gather(), tasks);
            } else {
                gpu.launch(plan.out_total, &KernelCost::gather(), tasks);
            }
        }
        (ShingleKernel::FusedSelect, _) => {
            // 2a–c fused: hash + per-segment ascending top-s
            // selection straight into the dense output. Identical
            // bytes to the sorted prefix the compaction copies.
            if let Some((compute, _)) = streams {
                thrust::transform_select_on(
                    compute,
                    elems_dev,
                    &plan.local_offsets,
                    &plan.out_offsets,
                    &mut out_dev,
                    move |v: u32| pack(hash_with(a, b, v), v),
                );
            } else {
                thrust::transform_select(
                    gpu,
                    elems_dev,
                    &plan.local_offsets,
                    &plan.out_offsets,
                    &mut out_dev,
                    move |v: u32| pack(hash_with(a, b, v), v),
                );
            }
        }
        (ShingleKernel::SortCompact, None) => unreachable!("workspace allocated above"),
    }
    // 2d. Per-trial transfer back to the host. Synchronous mode blocks;
    // overlapped mode queues the copy behind the trial's kernels and lets
    // the next trial's kernels start meanwhile.
    if let Some((compute, copy)) = streams {
        copy.wait_event(&compute.record_event());
        let data = copy.try_dtoh_async(&out_dev)?;
        *prev_out = Some(out_dev);
        Ok(data)
    } else {
        gpu.try_dtoh(&out_dev)
    }
}

/// The shared driver behind both scheduling modes and both kernels.
/// `streams` is `Some((compute, copy))` for the double-buffered pipeline,
/// `None` for the synchronous baseline; `kernel` picks the top-s
/// extraction plan; `capacity` is the per-batch element budget (normally
/// [`batch_capacity`] of the device, injectable for tests). The host-side
/// loop structure — batch plan, trial order, record emission — is
/// identical across all four combinations, which is what guarantees
/// bit-identical output; only where the modeled time lands differs.
///
/// Fault handling per `policy`: transient faults retry via
/// [`retry_transient`]; a batch whose budget is spent degrades — its
/// remaining trials run through [`host_trial_out`], emitting the same
/// bytes the device would have. `OutOfMemory` and `DeviceLost` propagate
/// (backoff and multi-device redistribution live in the callers).
#[allow(clippy::too_many_arguments)] // internal driver; public wrappers are narrower
fn run_device_pass<S: RecordSink>(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    aggregation: AggregationMode,
    capacity: usize,
    streams: Option<(&Stream, &Stream)>,
    policy: &FaultPolicy,
    recovery: &mut RecoveryReport,
    sink: &mut S,
) -> Result<BatchStats, DeviceError> {
    let offsets = input.offsets();
    let flat = input.flat();
    let batches = plan_batches(offsets, capacity);
    let stats = BatchStats::from_plan(&batches, capacity, kernel, aggregation);

    // Carry buffers for the one adjacency list that can span the current
    // batch boundary: per-trial top candidates of the fragments seen so
    // far.
    let mut carry: Vec<Vec<u64>> = vec![Vec::new(); family.len()];
    let mut carry_node: Option<u32> = None;
    // Double buffer: the next batch's elements already uploaded on the
    // copy stream, with the event marking that upload's completion.
    let mut staged: Option<(DeviceBuffer<u32>, StreamEvent)> = None;
    for (bi, batch) in batches.iter().enumerate() {
        let plan = plan_batch(batch, offsets, s);
        let staged_now = staged.take();
        if plan.nodes.is_empty() {
            continue;
        }
        let range = batch.elem_lo as usize..batch.elem_hi as usize;
        let batch_elems = &flat[range];
        // Once true, every remaining trial of this batch runs on the
        // bit-identical host path.
        let mut degraded = false;

        // 1. The batch's elements on the device: staged by the previous
        // iteration's prefetch, or moved now (H2D once, reused across
        // trials). Transient upload faults retry; an exhausted budget
        // degrades the whole batch.
        let upload = if let Some((compute, copy)) = streams {
            match staged_now {
                Some((buf, uploaded)) => {
                    compute.wait_event(&uploaded);
                    Ok(buf)
                }
                None => retry_transient(policy, recovery, || {
                    let buf = copy.htod_async(batch_elems)?;
                    compute.wait_event(&copy.record_event());
                    Ok(buf)
                }),
            }
        } else {
            retry_transient(policy, recovery, || gpu.htod(batch_elems))
        };
        let elems_dev: Option<DeviceBuffer<u32>> = match upload {
            Ok(buf) => Some(buf),
            Err(e) if e.is_transient() && policy.degrade_to_host => {
                degraded = true;
                recovery.degraded_batches += 1;
                None
            }
            Err(e) => return Err(e),
        };
        // Only the sort path materializes the 8-byte packed workspace;
        // the fused kernel hashes on the fly.
        let mut packed_dev: Option<DeviceBuffer<u64>> = match (kernel, &elems_dev) {
            (ShingleKernel::SortCompact, Some(elems)) => {
                let n = elems.len();
                match retry_transient(policy, recovery, || gpu.alloc::<u64>(n)) {
                    Ok(buf) => Some(buf),
                    Err(e) if e.is_transient() && policy.degrade_to_host => {
                        degraded = true;
                        recovery.degraded_batches += 1;
                        None
                    }
                    Err(e) => return Err(e),
                }
            }
            _ => None,
        };

        // Prefetch batch k+1 on the copy stream while batch k computes.
        // Best effort: under memory pressure (or an injected upload
        // fault) the upload simply happens at the top of the next
        // iteration instead.
        if let Some((_, copy)) = streams {
            if let Some(next) = batches.get(bi + 1) {
                let next_range = next.elem_lo as usize..next.elem_hi as usize;
                if let Ok(buf) = copy.htod_async(&flat[next_range]) {
                    staged = Some((buf, copy.record_event()));
                }
            }
        }

        // In the overlapped schedule the previous trial's output buffer
        // stays allocated while its D2H is modeled in flight.
        let mut prev_out: Option<DeviceBuffer<u64>> = None;
        #[allow(clippy::needless_range_loop)] // trial indexes both family and carry
        for trial in 0..family.len() {
            let (a, b) = family.coeffs(trial);
            let host_out = match elems_dev.as_ref().filter(|_| !degraded) {
                Some(elems) => {
                    let attempt = retry_transient(policy, recovery, || {
                        device_trial(
                            gpu,
                            streams,
                            kernel,
                            &plan,
                            elems,
                            &mut packed_dev,
                            a,
                            b,
                            &mut prev_out,
                            &mut staged,
                        )
                    });
                    match attempt {
                        Ok(out) => out,
                        Err(e) if e.is_transient() && policy.degrade_to_host => {
                            degraded = true;
                            recovery.degraded_batches += 1;
                            let t0 = Instant::now();
                            let out = host_trial_out(&plan, batch_elems, a, b);
                            recovery.recovery_seconds += t0.elapsed().as_secs_f64();
                            out
                        }
                        Err(e) => return Err(e),
                    }
                }
                None => {
                    let t0 = Instant::now();
                    let out = host_trial_out(&plan, batch_elems, a, b);
                    recovery.recovery_seconds += t0.elapsed().as_secs_f64();
                    out
                }
            };
            emit_trial_records(
                &plan, &host_out, trial, s, &mut carry, carry_node, gpu, streams, sink,
            )?;
        }
        drop(prev_out);
        // Free the batch's element (and packed-workspace) buffers before
        // the sink's batch hook runs, so a device-aggregation flush can
        // allocate its staging column and record buffer.
        drop(packed_dev);
        drop(elems_dev);
        sink.batch_end(gpu, streams)?;
        carry_node = if plan.last_frag {
            Some(plan.nodes[plan.nodes.len() - 1])
        } else {
            None
        };
    }
    debug_assert!(carry_node.is_none(), "carry must drain by the final batch");
    Ok(stats)
}

/// Run one full shingling pass on the device with synchronous (Thrust 1.5
/// style) transfers, streaming each finalized `(trial, node, top-s pairs)`
/// record to `f`. Records arrive grouped (one per `(trial, node)`, boundary
/// fragments already merged) with exactly `s` sorted pairs. Returns the
/// pass's [`BatchStats`] so capacity-driven splits are visible.
pub fn gpu_shingle_pass_foreach(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    f: impl FnMut(u32, u32, &[u64]),
) -> Result<BatchStats, DeviceError> {
    let capacity = batch_capacity(gpu.mem_available(), kernel, AggregationMode::Host);
    gpu_shingle_pass_foreach_with_capacity(gpu, input, s, family, kernel, capacity, f)
}

/// [`gpu_shingle_pass_foreach`] with an explicit per-batch element
/// capacity instead of the device-derived one. Two runs that share a
/// capacity share a batch plan and therefore emit record-identical
/// streams regardless of kernel — the lever the bit-identity proptests
/// pull.
pub fn gpu_shingle_pass_foreach_with_capacity(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    capacity: usize,
    f: impl FnMut(u32, u32, &[u64]),
) -> Result<BatchStats, DeviceError> {
    run_device_pass(
        gpu,
        input,
        s,
        family,
        kernel,
        AggregationMode::Host,
        capacity,
        None,
        &FaultPolicy::default(),
        &mut RecoveryReport::default(),
        &mut FnSink(f),
    )
}

/// Run one full shingling pass as a double-buffered two-stream pipeline.
/// Emits records bit-identically to [`gpu_shingle_pass_foreach`] (same
/// batch plan, same host-side loop order) and returns the pass's
/// [`BatchStats`] plus its modeled **pipelined makespan** in seconds: the
/// max of the compute and copy stream cursors once both drain.
pub fn gpu_shingle_pass_overlapped_foreach(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    f: impl FnMut(u32, u32, &[u64]),
) -> Result<(BatchStats, f64), DeviceError> {
    let capacity = batch_capacity(gpu.mem_available(), kernel, AggregationMode::Host);
    gpu_shingle_pass_overlapped_foreach_with_capacity(gpu, input, s, family, kernel, capacity, f)
}

/// [`gpu_shingle_pass_overlapped_foreach`] with an explicit per-batch
/// element capacity (see [`gpu_shingle_pass_foreach_with_capacity`]).
pub fn gpu_shingle_pass_overlapped_foreach_with_capacity(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    capacity: usize,
    f: impl FnMut(u32, u32, &[u64]),
) -> Result<(BatchStats, f64), DeviceError> {
    let compute = gpu.stream("shingle-compute");
    let copy = gpu.stream("shingle-copy");
    let stats = run_device_pass(
        gpu,
        input,
        s,
        family,
        kernel,
        AggregationMode::Host,
        capacity,
        Some((&compute, &copy)),
        &FaultPolicy::default(),
        &mut RecoveryReport::default(),
        &mut FnSink(f),
    )?;
    Ok((
        stats,
        compute.completed_seconds().max(copy.completed_seconds()),
    ))
}

/// Run one full shingling pass on the device, materializing the records.
/// Prefer [`gpu_shingle_pass_foreach`] in memory-sensitive paths.
pub fn gpu_shingle_pass(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
) -> Result<RawShingles, DeviceError> {
    let mut raw = RawShingles::new(s);
    gpu_shingle_pass_foreach(gpu, input, s, family, kernel, |trial, node, pairs| {
        raw.push(trial, node, pairs);
    })?;
    raw.mark_grouped();
    Ok(raw)
}

/// [`gpu_shingle_pass`] with an explicit per-batch element capacity.
pub fn gpu_shingle_pass_with_capacity(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    capacity: usize,
) -> Result<RawShingles, DeviceError> {
    let mut raw = RawShingles::new(s);
    gpu_shingle_pass_foreach_with_capacity(
        gpu,
        input,
        s,
        family,
        kernel,
        capacity,
        |trial, node, pairs| {
            raw.push(trial, node, pairs);
        },
    )?;
    raw.mark_grouped();
    Ok(raw)
}

/// [`gpu_shingle_pass`] under the overlapped schedule: materialized records
/// plus the pass's pipelined makespan.
pub fn gpu_shingle_pass_overlapped(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
) -> Result<(RawShingles, f64), DeviceError> {
    let mut raw = RawShingles::new(s);
    let (_, makespan) = gpu_shingle_pass_overlapped_foreach(
        gpu,
        input,
        s,
        family,
        kernel,
        |trial, node, pairs| {
            raw.push(trial, node, pairs);
        },
    )?;
    raw.mark_grouped();
    Ok((raw, makespan))
}

/// Records per device pack task (one thread-block-batch per chunk).
const PACK_CHUNK: usize = 4 * 1024;

/// Device-side aggregation front end: stages finalized records, then
/// packs and radix-sorts them **on the device** into [`SortedRun`]s that a
/// k-way host merge ([`crate::aggregate::merge_sorted_runs`]) consumes
/// record-by-record. This replaces the host's giant global
/// `par_sort_unstable` over all `c·n` records — the step behind the CPU
/// column's ~79% share in Table I — with a `thrust::sort_by_key`-style
/// sort per flush plus an O(|E′| log r) streaming merge.
///
/// ## Staging and run sizing
///
/// Each record stages as a stride-`s + 2` u32 column `[trial, node,
/// e_0..e_{s-1}]`. A flush uploads the column, launches a pack kernel
/// computing `(shingle_key << 64) | (node << 32) | run_local_idx` per
/// record (the same 128-bit key the host oracle sorts), radix-sorts the
/// u128s ([`thrust::sort_pairs`] — two 64-bit `sort_by_key` passes), and
/// downloads the sorted run. Flushes trigger when the staged count
/// reaches `run_capacity` and at every batch boundary; `run_capacity` is
/// sized so the column (`4·(s+2)` B/record) and the packed buffer (16
/// B/record) together fit the extra 16 B/element the
/// [`AggregationMode::Device`] batch footprint reserves
/// ([`crate::batch::bytes_per_elem`]).
///
/// In the simulator the staged key material lives host-side (the
/// boundary-fragment merge is a host step), so a flush re-uploads it; a
/// native implementation would pack interior records straight from the
/// device-resident per-trial output. The modeled H2D cost charged here is
/// therefore conservative.
///
/// ## Bit-identity with host aggregation
///
/// Flush boundaries cut the emission sequence into contiguous slices, so
/// run order = emission order, and each run is ascending in the full
/// 128-bit record. The k-way merge keyed on `((packed >> 32), run_idx)`
/// then replays exactly the host oracle's `(key, node, global emission
/// idx)` order. An out-of-memory flush falls back to packing and sorting
/// the same records on the host — also a total-order ascending u128 sort,
/// hence bit-identical.
pub struct DeviceRunBuilder {
    s: usize,
    /// Interleaved staging column, stride `s + 2`.
    col: Vec<u32>,
    run_capacity: usize,
    runs: Vec<SortedRun>,
    agg_kernel_seconds: f64,
    host_fallbacks: u64,
    policy: FaultPolicy,
    recovery: RecoveryReport,
}

impl DeviceRunBuilder {
    /// `capacity` is the pass's per-batch element budget: the run size is
    /// derived from the 16 B/element device-aggregation reserve it
    /// implies.
    pub fn new(s: usize, capacity: usize) -> Self {
        Self::with_policy(s, capacity, FaultPolicy::default())
    }

    /// [`DeviceRunBuilder::new`] with an explicit fault policy governing
    /// flush-time retries and host fallback.
    pub fn with_policy(s: usize, capacity: usize, policy: FaultPolicy) -> Self {
        let per_record = 16 + 4 * (s + 2);
        DeviceRunBuilder {
            s,
            col: Vec::new(),
            run_capacity: ((16 * capacity) / per_record).max(1),
            runs: Vec::new(),
            agg_kernel_seconds: 0.0,
            host_fallbacks: 0,
            policy,
            recovery: RecoveryReport::default(),
        }
    }

    /// Staged-but-unflushed record count.
    pub fn staged(&self) -> usize {
        self.col.len() / (self.s + 2)
    }

    /// Flushes that hit device memory pressure and sorted on the host
    /// instead (bit-identical, but no device offload for that run).
    pub fn host_fallbacks(&self) -> u64 {
        self.host_fallbacks
    }

    /// Modeled device seconds spent in aggregation kernels (pack + radix
    /// sort) so far — the work that used to be host sort time.
    pub fn agg_kernel_seconds(&self) -> f64 {
        self.agg_kernel_seconds
    }

    /// Stage one record; the caller decides when to flush (the
    /// [`RecordSink`] impl flushes at `run_capacity` and on `batch_end`).
    pub fn push(&mut self, trial: u32, node: u32, pairs: &[u64]) {
        debug_assert_eq!(pairs.len(), self.s);
        self.col.reserve(self.s + 2);
        self.col.push(trial);
        self.col.push(node);
        self.col.extend(pairs.iter().map(|&p| unpack_element(p)));
    }

    /// Pack + sort the staged records into one [`SortedRun`].
    pub fn flush(
        &mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
    ) -> Result<(), DeviceError> {
        let stride = self.s + 2;
        let n = self.col.len() / stride;
        if n == 0 {
            return Ok(());
        }
        let col = std::mem::take(&mut self.col);
        let elements: Vec<u32> = col
            .chunks_exact(stride)
            .flat_map(|rec| rec[2..].iter().copied())
            .collect();
        let attempt = retry_transient(&self.policy, &mut self.recovery, || {
            device_pack_sort(gpu, streams, &col, n, stride)
        });
        let packed = match attempt {
            Ok((packed, agg_seconds)) => {
                self.agg_kernel_seconds += agg_seconds;
                packed
            }
            Err(e)
                if matches!(e, DeviceError::OutOfMemory { .. }) || self.policy.degrade_to_host =>
            {
                // Same total-order ascending sort on the host: the run's
                // bytes are identical, only the modeled time lands on the
                // CPU instead. Memory pressure always takes this path
                // (the flush is sized to fit, so OOM here is structural);
                // exhausted transient retries take it when the policy
                // allows degradation.
                self.host_fallbacks += 1;
                let t0 = Instant::now();
                let packed = host_pack_sort(&col, stride);
                self.recovery.recovery_seconds += t0.elapsed().as_secs_f64();
                packed
            }
            Err(e) => return Err(e),
        };
        self.runs.push(SortedRun { packed, elements });
        Ok(())
    }

    /// Flush any staged tail and return the sorted runs plus the modeled
    /// device seconds the aggregation kernels consumed.
    pub fn finish(
        self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
    ) -> Result<(Vec<SortedRun>, f64), DeviceError> {
        let (runs, agg_seconds, _) = self.finish_with_recovery(gpu, streams)?;
        Ok((runs, agg_seconds))
    }

    /// [`DeviceRunBuilder::finish`] that also surfaces the builder's
    /// [`RecoveryReport`], with `host_fallbacks` folded in.
    pub fn finish_with_recovery(
        mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
    ) -> Result<(Vec<SortedRun>, f64, RecoveryReport), DeviceError> {
        self.flush(gpu, streams)?;
        let mut recovery = self.recovery;
        recovery.host_fallbacks += self.host_fallbacks;
        Ok((self.runs, self.agg_kernel_seconds, recovery))
    }
}

/// One flush's device work: column up, pack kernel, u128 radix sort,
/// sorted run down. Returns the run plus the modeled device seconds the
/// aggregation kernels consumed. A free function (not a method) so the
/// flush can re-run it under [`retry_transient`] without borrowing the
/// builder twice; idempotent because every buffer is recomputed from
/// `col`.
fn device_pack_sort(
    gpu: &Gpu,
    streams: Option<(&Stream, &Stream)>,
    col: &[u32],
    n: usize,
    stride: usize,
) -> Result<(Vec<u128>, f64), DeviceError> {
    let pack_cost = KernelCost::transform();
    let agg_seconds = gpu.model_kernel_seconds(n, &pack_cost)
        + gpu.model_kernel_seconds(n, &KernelCost::pair_sort());
    if let Some((compute, copy)) = streams {
        // Column up on the copy stream (overlaps earlier compute),
        // pack + sort on the compute stream, sorted run back on the
        // copy stream — overlapping the next batch's kernels exactly
        // like the per-trial D2H does.
        let col_dev = copy.htod_async(col)?;
        compute.wait_event(&copy.record_event());
        let mut packed_dev = gpu.alloc::<u128>(n)?;
        let tasks = pack_tasks(
            col_dev.device_slice(),
            packed_dev.device_slice_mut(),
            stride,
        );
        compute.launch(n, &pack_cost, tasks);
        thrust::sort_pairs_on(compute, &mut packed_dev);
        copy.wait_event(&compute.record_event());
        let packed = copy.try_dtoh_async(&packed_dev)?;
        Ok((packed, agg_seconds))
    } else {
        let col_dev = gpu.htod(col)?;
        let mut packed_dev = gpu.alloc::<u128>(n)?;
        let tasks = pack_tasks(
            col_dev.device_slice(),
            packed_dev.device_slice_mut(),
            stride,
        );
        gpu.launch(n, &pack_cost, tasks);
        thrust::sort_pairs(gpu, &mut packed_dev);
        let packed = gpu.try_dtoh(&packed_dev)?;
        Ok((packed, agg_seconds))
    }
}

impl RecordSink for DeviceRunBuilder {
    fn record(
        &mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
        trial: u32,
        node: u32,
        pairs: &[u64],
    ) -> Result<(), DeviceError> {
        self.push(trial, node, pairs);
        if self.staged() >= self.run_capacity {
            self.flush(gpu, streams)?;
        }
        Ok(())
    }

    fn batch_end(
        &mut self,
        gpu: &Gpu,
        streams: Option<(&Stream, &Stream)>,
    ) -> Result<(), DeviceError> {
        self.flush(gpu, streams)
    }
}

/// Device pack kernel: one task per [`PACK_CHUNK`] records, each
/// computing the 128-bit sort record from the staged column.
fn pack_tasks<'a>(
    col: &'a [u32],
    out: &'a mut [u128],
    stride: usize,
) -> Vec<Box<dyn FnOnce() + Send + 'a>> {
    out.chunks_mut(PACK_CHUNK)
        .enumerate()
        .map(|(ci, dst)| {
            let base = ci * PACK_CHUNK;
            Box::new(move || {
                for (k, d) in dst.iter_mut().enumerate() {
                    let r = base + k;
                    let rec = &col[r * stride..(r + 1) * stride];
                    let key = shingle_key(rec[0], rec[2..].iter().copied());
                    *d = ((key as u128) << 64) | ((rec[1] as u128) << 32) | r as u128;
                }
            }) as Box<dyn FnOnce() + Send + 'a>
        })
        .collect()
}

/// Host fallback of the pack + sort, used when a flush cannot get device
/// memory. Identical bytes: same key computation, same ascending total
/// order.
fn host_pack_sort(col: &[u32], stride: usize) -> Vec<u128> {
    let mut packed: Vec<u128> = col
        .chunks_exact(stride)
        .enumerate()
        .map(|(r, rec)| {
            let key = shingle_key(rec[0], rec[2..].iter().copied());
            ((key as u128) << 64) | ((rec[1] as u128) << 32) | r as u128
        })
        .collect();
    packed.sort_unstable();
    packed
}

/// One synchronous shingling pass under [`AggregationMode::Device`]: the
/// records never queue for a host sort — they pack and radix-sort on the
/// device per flush and come back as [`SortedRun`]s for
/// [`crate::aggregate::merge_sorted_runs`]. Returns the runs, the pass's
/// [`BatchStats`], and the modeled device seconds the aggregation kernels
/// added.
pub fn gpu_shingle_pass_device_agg(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
) -> Result<(Vec<SortedRun>, BatchStats, f64), DeviceError> {
    let capacity = batch_capacity(gpu.mem_available(), kernel, AggregationMode::Device);
    gpu_shingle_pass_device_agg_with_capacity(gpu, input, s, family, kernel, capacity)
}

/// [`gpu_shingle_pass_device_agg`] with an explicit per-batch element
/// capacity (see [`gpu_shingle_pass_foreach_with_capacity`]).
pub fn gpu_shingle_pass_device_agg_with_capacity(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    capacity: usize,
) -> Result<(Vec<SortedRun>, BatchStats, f64), DeviceError> {
    let mut builder = DeviceRunBuilder::new(s, capacity);
    let stats = run_device_pass(
        gpu,
        input,
        s,
        family,
        kernel,
        AggregationMode::Device,
        capacity,
        None,
        &FaultPolicy::default(),
        &mut RecoveryReport::default(),
        &mut builder,
    )?;
    let (runs, agg_seconds) = builder.finish(gpu, None)?;
    Ok((runs, stats, agg_seconds))
}

/// [`gpu_shingle_pass_device_agg`] under the overlapped two-stream
/// schedule: each flush's column upload and sorted-run download ride the
/// copy stream while the next batch's trials run on the compute stream.
/// Returns `(runs, stats, agg kernel seconds, pipelined makespan)`.
pub fn gpu_shingle_pass_overlapped_device_agg(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
) -> Result<(Vec<SortedRun>, BatchStats, f64, f64), DeviceError> {
    let capacity = batch_capacity(gpu.mem_available(), kernel, AggregationMode::Device);
    gpu_shingle_pass_overlapped_device_agg_with_capacity(gpu, input, s, family, kernel, capacity)
}

/// [`gpu_shingle_pass_overlapped_device_agg`] with an explicit per-batch
/// element capacity.
pub fn gpu_shingle_pass_overlapped_device_agg_with_capacity(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    capacity: usize,
) -> Result<(Vec<SortedRun>, BatchStats, f64, f64), DeviceError> {
    let compute = gpu.stream("shingle-compute");
    let copy = gpu.stream("shingle-copy");
    let mut builder = DeviceRunBuilder::new(s, capacity);
    let stats = run_device_pass(
        gpu,
        input,
        s,
        family,
        kernel,
        AggregationMode::Device,
        capacity,
        Some((&compute, &copy)),
        &FaultPolicy::default(),
        &mut RecoveryReport::default(),
        &mut builder,
    )?;
    let (runs, agg_seconds) = builder.finish(gpu, Some((&compute, &copy)))?;
    let makespan = compute.completed_seconds().max(copy.completed_seconds());
    Ok((runs, stats, agg_seconds, makespan))
}

/// One resilient host-aggregation shingling pass: the policy-aware form
/// of the `foreach` entry points, dispatching on [`PipelineMode`].
/// Transient faults retry, exhausted batches degrade to the bit-identical
/// host path, and every recovery action lands in `recovery`.
/// `OutOfMemory` and `DeviceLost` propagate typed (backoff and
/// redistribution are pass-level decisions made by the callers in
/// `pipeline`/`multi_gpu`). Returns the pass's [`BatchStats`] and its
/// pipelined makespan (0 under [`PipelineMode::Synchronous`]).
#[allow(clippy::too_many_arguments)] // the policy-aware superset of 4 wrappers
pub fn gpu_shingle_pass_resilient_foreach(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    mode: PipelineMode,
    capacity: usize,
    policy: &FaultPolicy,
    recovery: &mut RecoveryReport,
    f: impl FnMut(u32, u32, &[u64]),
) -> Result<(BatchStats, f64), DeviceError> {
    match mode {
        PipelineMode::Synchronous => {
            let stats = run_device_pass(
                gpu,
                input,
                s,
                family,
                kernel,
                AggregationMode::Host,
                capacity,
                None,
                policy,
                recovery,
                &mut FnSink(f),
            )?;
            Ok((stats, 0.0))
        }
        PipelineMode::Overlapped => {
            let compute = gpu.stream("shingle-compute");
            let copy = gpu.stream("shingle-copy");
            let stats = run_device_pass(
                gpu,
                input,
                s,
                family,
                kernel,
                AggregationMode::Host,
                capacity,
                Some((&compute, &copy)),
                policy,
                recovery,
                &mut FnSink(f),
            )?;
            Ok((
                stats,
                compute.completed_seconds().max(copy.completed_seconds()),
            ))
        }
    }
}

/// One resilient device-aggregation shingling pass (the policy-aware form
/// of the `device_agg` entry points; see
/// [`gpu_shingle_pass_resilient_foreach`] for the fault semantics).
/// Returns `(runs, stats, agg kernel seconds, pipelined makespan)` — the
/// makespan is 0 under [`PipelineMode::Synchronous`].
#[allow(clippy::too_many_arguments)] // the policy-aware superset of 4 wrappers
pub fn gpu_shingle_pass_resilient_device_agg(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    mode: PipelineMode,
    capacity: usize,
    policy: &FaultPolicy,
    recovery: &mut RecoveryReport,
) -> Result<(Vec<SortedRun>, BatchStats, f64, f64), DeviceError> {
    let mut builder = DeviceRunBuilder::with_policy(s, capacity, *policy);
    match mode {
        PipelineMode::Synchronous => {
            let stats = run_device_pass(
                gpu,
                input,
                s,
                family,
                kernel,
                AggregationMode::Device,
                capacity,
                None,
                policy,
                recovery,
                &mut builder,
            )?;
            let (runs, agg_seconds, builder_recovery) = builder.finish_with_recovery(gpu, None)?;
            recovery.merge(&builder_recovery);
            Ok((runs, stats, agg_seconds, 0.0))
        }
        PipelineMode::Overlapped => {
            let compute = gpu.stream("shingle-compute");
            let copy = gpu.stream("shingle-copy");
            let stats = run_device_pass(
                gpu,
                input,
                s,
                family,
                kernel,
                AggregationMode::Device,
                capacity,
                Some((&compute, &copy)),
                policy,
                recovery,
                &mut builder,
            )?;
            let (runs, agg_seconds, builder_recovery) =
                builder.finish_with_recovery(gpu, Some((&compute, &copy)))?;
            recovery.merge(&builder_recovery);
            let makespan = compute.completed_seconds().max(copy.completed_seconds());
            Ok((runs, stats, agg_seconds, makespan))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate;
    use crate::serial::shingle_pass;
    use gpclust_gpu::DeviceConfig;
    use gpclust_graph::generate::{planted_partition, PlantedConfig};
    use gpclust_graph::Csr;

    const KERNELS: [ShingleKernel; 2] = [ShingleKernel::SortCompact, ShingleKernel::FusedSelect];

    fn planted_graph(seed: u64) -> Csr {
        planted_partition(&PlantedConfig {
            group_sizes: vec![30, 20, 25],
            n_noise_vertices: 10,
            p_intra: 0.7,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed,
        })
        .graph
    }

    fn batching_graph(seed: u64) -> Csr {
        // ~8k edges → ~16k adjacency elements, several times the tiny
        // device's batch capacity under either kernel.
        planted_partition(&PlantedConfig {
            group_sizes: vec![120, 100, 80],
            n_noise_vertices: 20,
            p_intra: 0.5,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed,
        })
        .graph
    }

    /// The GPU pass must aggregate to exactly the serial pass's result —
    /// under both kernels.
    #[test]
    fn matches_serial_oracle_single_batch() {
        let g = planted_graph(1);
        let family = HashFamily::new(25, 9);
        let serial = aggregate(&shingle_pass(&g, 2, &family));
        for kernel in KERNELS {
            let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 3);
            let device = aggregate(&gpu_shingle_pass(&gpu, &g, 2, &family, kernel).unwrap());
            assert_eq!(serial, device, "{kernel:?}");
        }
    }

    /// The tiny device (64 KiB) forces many batches and split lists; the
    /// merged result must still equal the serial oracle — under both
    /// kernels.
    #[test]
    fn matches_serial_oracle_with_forced_batching() {
        let g = batching_graph(2);
        let family = HashFamily::new(12, 4);
        let serial = aggregate(&shingle_pass(&g, 2, &family));
        for kernel in KERNELS {
            let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
            let device = aggregate(&gpu_shingle_pass(&gpu, &g, 2, &family, kernel).unwrap());
            assert_eq!(serial, device, "{kernel:?}");
            assert!(
                gpu.counters().h2d_transfers > 1,
                "tiny device must have batched ({kernel:?})"
            );
        }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let g = planted_graph(3);
        let family = HashFamily::new(8, 5);
        for kernel in KERNELS {
            let mut results = Vec::new();
            for workers in [1usize, 4] {
                let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), workers);
                results.push(aggregate(
                    &gpu_shingle_pass(&gpu, &g, 3, &family, kernel).unwrap(),
                ));
            }
            assert_eq!(results[0], results[1], "{kernel:?}");
        }
    }

    #[test]
    fn per_trial_d2h_traffic() {
        let g = planted_graph(4);
        let c = 10;
        let family = HashFamily::new(c, 6);
        for kernel in KERNELS {
            let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
            gpu_shingle_pass(&gpu, &g, 2, &family, kernel).unwrap();
            let snap = gpu.counters();
            // One D2H per trial per batch (single batch here).
            assert_eq!(snap.d2h_transfers, c as u64, "{kernel:?}");
            assert_eq!(snap.h2d_transfers, 1, "{kernel:?}");
            assert!(snap.d2h_seconds > 0.0, "{kernel:?}");
        }
    }

    #[test]
    fn s_larger_than_all_degrees_yields_nothing() {
        let g = planted_graph(5);
        let family = HashFamily::new(5, 7);
        for kernel in KERNELS {
            let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
            let raw = gpu_shingle_pass(&gpu, &g, 10_000, &family, kernel).unwrap();
            assert!(aggregate(&raw).is_empty(), "{kernel:?}");
        }
    }

    #[test]
    fn empty_graph_no_records() {
        let mut el = gpclust_graph::EdgeList::new();
        let g = Csr::from_edges(5, &mut el);
        let family = HashFamily::new(3, 8);
        for kernel in KERNELS {
            let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
            let raw = gpu_shingle_pass(&gpu, &g, 2, &family, kernel).unwrap();
            assert!(raw.is_empty(), "{kernel:?}");
        }
    }

    /// The overlapped pipeline must produce bit-identical records — same
    /// values, same emission order — on both the one-batch K20 and the
    /// tiny device that forces multi-batch double buffering, under both
    /// kernels.
    #[test]
    fn overlapped_bit_identical_to_synchronous() {
        let g = batching_graph(11);
        let family = HashFamily::new(12, 4);
        for kernel in KERNELS {
            for config in [DeviceConfig::tesla_k20(), DeviceConfig::tiny_test_device()] {
                let gpu_sync = Gpu::with_workers(config.clone(), 2);
                let gpu_ovl = Gpu::with_workers(config, 2);
                let sync = gpu_shingle_pass(&gpu_sync, &g, 2, &family, kernel).unwrap();
                let (ovl, makespan) =
                    gpu_shingle_pass_overlapped(&gpu_ovl, &g, 2, &family, kernel).unwrap();
                assert_eq!(sync, ovl, "{kernel:?}");
                assert!(makespan > 0.0);
                // Transfer traffic (counts and bytes) is also identical when
                // no prefetch had to be retried.
                let a = gpu_sync.counters();
                let b = gpu_ovl.counters();
                assert_eq!(a.h2d_bytes, b.h2d_bytes, "{kernel:?}");
                assert_eq!(a.d2h_bytes, b.d2h_bytes, "{kernel:?}");
                assert_eq!(a.kernel_launches, b.kernel_launches, "{kernel:?}");
            }
        }
    }

    /// Overlap accounting on the K20: every async transfer lands in the
    /// overlap sub-accounts, and the pipelined makespan beats the
    /// serialized sum while never beating the kernel lower bound.
    #[test]
    fn overlapped_makespan_beats_serialized_path() {
        let g = planted_graph(6);
        let family = HashFamily::new(20, 9);
        for kernel in KERNELS {
            let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
            let (_, makespan) = gpu_shingle_pass_overlapped(&gpu, &g, 2, &family, kernel).unwrap();
            let snap = gpu.counters();
            let serialized = snap.serialized_device_seconds();
            assert!(
                makespan < serialized,
                "pipelined {makespan} must beat serialized {serialized} ({kernel:?})"
            );
            assert!(
                makespan >= snap.kernel_seconds - 1e-6,
                "pipelined {makespan} cannot beat the kernel-only lower bound ({kernel:?})"
            );
            // All transfers were issued asynchronously.
            assert!(snap.d2h_overlapped_seconds > 0.0);
            assert!((snap.d2h_overlapped_seconds - snap.d2h_seconds).abs() < 1e-9);
            assert!((snap.h2d_overlapped_seconds - snap.h2d_seconds).abs() < 1e-9);
            assert_eq!(snap.blocking_transfer_seconds(), 0.0);
        }
    }

    /// At a shared (forced) capacity the two kernels share a batch plan
    /// and must emit **record-identical streams**, while the fused kernel
    /// does strictly less device work: one launch per (batch, trial)
    /// instead of three, and less modeled kernel time.
    #[test]
    fn fused_select_bit_identical_and_cheaper_at_equal_capacity() {
        let g = batching_graph(7);
        let family = HashFamily::new(10, 3);
        let cap = 1500; // forces several batches with split lists
        let gpu_sort = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let gpu_sel = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let sort = gpu_shingle_pass_with_capacity(
            &gpu_sort,
            &g,
            2,
            &family,
            ShingleKernel::SortCompact,
            cap,
        )
        .unwrap();
        let sel = gpu_shingle_pass_with_capacity(
            &gpu_sel,
            &g,
            2,
            &family,
            ShingleKernel::FusedSelect,
            cap,
        )
        .unwrap();
        assert_eq!(sort, sel);
        let a = gpu_sort.counters();
        let b = gpu_sel.counters();
        assert!(
            b.kernel_launches < a.kernel_launches,
            "fused {} vs sort {}",
            b.kernel_launches,
            a.kernel_launches
        );
        assert!(
            b.kernel_seconds < a.kernel_seconds,
            "fused {} s vs sort {} s",
            b.kernel_seconds,
            a.kernel_seconds
        );
        // Transfer traffic is identical under a shared plan.
        assert_eq!(a.h2d_bytes, b.h2d_bytes);
        assert_eq!(a.d2h_bytes, b.d2h_bytes);
    }

    /// With device-derived capacities the fused kernel's halved footprint
    /// plans ~2× larger batches: fewer batches, fewer H2D invocations.
    #[test]
    fn fused_select_plans_larger_batches() {
        let g = batching_graph(8);
        let family = HashFamily::new(6, 2);
        let gpu_sort = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let gpu_sel = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let mut n_sort = 0u64;
        let sort_stats = gpu_shingle_pass_foreach(
            &gpu_sort,
            &g,
            2,
            &family,
            ShingleKernel::SortCompact,
            |_, _, _| n_sort += 1,
        )
        .unwrap();
        let mut n_sel = 0u64;
        let sel_stats = gpu_shingle_pass_foreach(
            &gpu_sel,
            &g,
            2,
            &family,
            ShingleKernel::FusedSelect,
            |_, _, _| n_sel += 1,
        )
        .unwrap();
        assert_eq!(n_sort, n_sel);
        // Halved footprint → ~2× capacity (±1 from integer division).
        assert!(sel_stats.capacity_elems >= 2 * sort_stats.capacity_elems - 1);
        assert!(
            sel_stats.n_batches < sort_stats.n_batches,
            "select {} batches vs sort {}",
            sel_stats.n_batches,
            sort_stats.n_batches
        );
        assert!(gpu_sel.counters().h2d_transfers < gpu_sort.counters().h2d_transfers);
        assert_eq!(sel_stats.elem_footprint_bytes, 8);
        assert_eq!(sort_stats.elem_footprint_bytes, 16);
    }

    /// BatchStats reflect the actual plan on an unconstrained device.
    #[test]
    fn batch_stats_single_batch_on_k20() {
        let g = planted_graph(9);
        let family = HashFamily::new(4, 1);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let stats = gpu_shingle_pass_foreach(
            &gpu,
            &g,
            2,
            &family,
            ShingleKernel::SortCompact,
            |_, _, _| {},
        )
        .unwrap();
        assert_eq!(stats.n_batches, 1);
        assert_eq!(stats.max_batch_elems, g.flat().len() as u64);
        assert!(stats.capacity_elems >= stats.max_batch_elems);
    }

    /// Device-aggregated runs, merged, must equal the host-aggregated
    /// oracle — under both kernels, on the one-batch K20.
    #[test]
    fn device_agg_matches_host_oracle_single_batch() {
        use crate::aggregate::merge_sorted_runs;
        let g = planted_graph(12);
        let family = HashFamily::new(20, 5);
        for kernel in KERNELS {
            let gpu_host = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
            let host = aggregate(&gpu_shingle_pass(&gpu_host, &g, 2, &family, kernel).unwrap());
            let gpu_dev = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
            let (runs, _, agg_s) =
                gpu_shingle_pass_device_agg(&gpu_dev, &g, 2, &family, kernel).unwrap();
            assert!(agg_s > 0.0, "{kernel:?}");
            assert_eq!(host, merge_sorted_runs(2, runs), "{kernel:?}");
        }
    }

    /// The tiny device forces many batches → many runs (one per batch
    /// flush, possibly more from the capacity trigger); the k-way merge
    /// must still reproduce the host oracle exactly, under both kernels
    /// and both schedules.
    #[test]
    fn device_agg_matches_host_oracle_with_forced_batching() {
        use crate::aggregate::merge_sorted_runs;
        let g = batching_graph(13);
        let family = HashFamily::new(12, 4);
        for kernel in KERNELS {
            let gpu_host = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
            let host = aggregate(&gpu_shingle_pass(&gpu_host, &g, 2, &family, kernel).unwrap());

            let gpu_sync = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
            let (runs, stats, _) =
                gpu_shingle_pass_device_agg(&gpu_sync, &g, 2, &family, kernel).unwrap();
            assert!(stats.n_batches > 1, "{kernel:?}");
            assert!(runs.len() > 1, "{kernel:?}");
            assert_eq!(host, merge_sorted_runs(2, runs), "{kernel:?}");

            let gpu_ovl = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
            let (runs_ovl, _, agg_s, makespan) =
                gpu_shingle_pass_overlapped_device_agg(&gpu_ovl, &g, 2, &family, kernel).unwrap();
            assert!(makespan > 0.0 && agg_s >= 0.0);
            assert_eq!(
                host,
                merge_sorted_runs(2, runs_ovl),
                "{kernel:?} overlapped"
            );
        }
    }

    /// Under a shared forced capacity the record streams are identical
    /// across modes, so the concatenated device runs must hold exactly the
    /// host-mode records (same count), each run ascending in the full
    /// 128-bit record with run-local low bits.
    #[test]
    fn device_runs_are_sorted_contiguous_slices_of_the_emission_stream() {
        let g = batching_graph(14);
        let family = HashFamily::new(8, 6);
        let cap = 1200;
        let kernel = ShingleKernel::SortCompact;
        let gpu_host = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let mut n_host = 0usize;
        gpu_shingle_pass_foreach_with_capacity(
            &gpu_host,
            &g,
            2,
            &family,
            kernel,
            cap,
            |_, _, _| {
                n_host += 1;
            },
        )
        .unwrap();
        let gpu_dev = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let (runs, _, _) =
            gpu_shingle_pass_device_agg_with_capacity(&gpu_dev, &g, 2, &family, kernel, cap)
                .unwrap();
        assert_eq!(runs.iter().map(|r| r.len()).sum::<usize>(), n_host);
        for run in &runs {
            assert!(run.packed.windows(2).all(|w| w[0] < w[1]), "run ascending");
            assert_eq!(run.elements.len(), run.len() * 2);
            for (i, &p) in run.packed.iter().enumerate() {
                assert!(((p & 0xFFFF_FFFF) as usize) < run.len(), "local idx {i}");
            }
        }
    }

    /// The device-aggregation flush charges its pack + radix-sort kernels
    /// to the device counters, and the overlapped schedule's makespan
    /// stays within the serialized bound.
    #[test]
    fn device_agg_charges_kernels_and_overlap_accounting_holds() {
        let g = planted_graph(15);
        let family = HashFamily::new(16, 7);
        let kernel = ShingleKernel::FusedSelect;
        let gpu_host = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        gpu_shingle_pass(&gpu_host, &g, 2, &family, kernel).unwrap();
        let gpu_dev = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let (_, _, agg_s, makespan) =
            gpu_shingle_pass_overlapped_device_agg(&gpu_dev, &g, 2, &family, kernel).unwrap();
        let host_snap = gpu_host.counters();
        let dev_snap = gpu_dev.counters();
        assert!(
            dev_snap.kernel_seconds > host_snap.kernel_seconds,
            "aggregation kernels must add device time"
        );
        assert!(
            (dev_snap.kernel_seconds - host_snap.kernel_seconds) >= agg_s * 0.5,
            "reported agg seconds {agg_s} should show up in the counters"
        );
        assert!(makespan < dev_snap.serialized_device_seconds());
        assert!(makespan >= dev_snap.kernel_seconds - 1e-6);
    }
}
