//! Algorithm 1 — one shingling pass on the (simulated) device.
//!
//! Per batch of adjacency lists (Figure 4):
//!
//! 1. the batch's concatenated elements move host→device once;
//! 2. for each random trial `h_i ∈ H`:
//!    a. `thrust::transform` maps every element `v` to the packed pair
//!    `(h_i(v) << 32) | v` — the random permutation of each list;
//!    b. a segmented sort orders every list by permuted value;
//!    c. a compaction kernel extracts the top `min(s, |segment|)` pairs of
//!    each segment into a dense output buffer;
//!    d. the output moves device→host immediately ("it is safe to transfer
//!    the generated shingles back to the host memory after each
//!    iteration for the immediate processing on the CPU side") — this
//!    per-trial D2H traffic is why *Data g→c* dominates the transfer
//!    budget in Table I.
//!
//! Interior segments shorter than `s` are skipped (they can never yield a
//! shingle); boundary segments are kept regardless, because they may be
//! fragments of lists split across batches. Fragments are merged here on
//! the host, per trial, as each batch's results arrive — so the records
//! handed to [`crate::aggregate`] are already one-per-(node, trial)
//! ("grouped"), which lets the aggregation skip its merge sort.

use crate::batch::{batch_capacity, plan_batches};
use crate::minwise::{hash_with, pack, HashFamily};
use crate::shingle::{AdjacencyInput, RawShingles};
use gpclust_gpu::{thrust, DeviceError, Gpu, KernelCost};

/// Run one full shingling pass on the device, streaming each finalized
/// `(trial, node, top-s pairs)` record to `f`. Records arrive grouped (one
/// per `(trial, node)`, boundary fragments already merged) with exactly
/// `s` sorted pairs.
pub fn gpu_shingle_pass_foreach(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
    mut f: impl FnMut(u32, u32, &[u64]),
) -> Result<(), DeviceError> {
    let offsets = input.offsets();
    let flat = input.flat();
    let capacity = batch_capacity(gpu.mem_available());
    let batches = plan_batches(offsets, capacity);

    // Carry buffers for the one adjacency list that can span the current
    // batch boundary: per-trial top candidates of the fragments seen so
    // far. The merge happens here, on the CPU side, exactly as the paper
    // describes ("the CPU has to combine the shingle results for the split
    // adjacency lists after it receives shingles from the GPU").
    let mut carry: Vec<Vec<u64>> = vec![Vec::new(); family.len()];
    let mut carry_node: Option<u32> = None;
    for batch in &batches {
        let (local_offsets, nodes) = batch.segments(offsets);
        if nodes.is_empty() {
            continue;
        }
        let first_frag = batch.first_is_fragment(offsets);
        let last_frag = batch.last_is_fragment(offsets);
        // Which segments can contribute: interior segments need ≥ s
        // elements; the first/last segment may be a fragment and is always
        // kept (its |list| may exceed s globally).
        let n_segs = nodes.len();
        let keep: Vec<bool> = (0..n_segs)
            .map(|i| {
                let len = (local_offsets[i + 1] - local_offsets[i]) as usize;
                let boundary = (i == 0 && batch.first_is_fragment(offsets))
                    || (i == n_segs - 1 && batch.last_is_fragment(offsets));
                boundary || len >= s
            })
            .collect();
        // Per-segment output slot counts and offsets for the compaction,
        // plus trial-invariant structures computed once per batch: the list
        // of emitting segments and the compaction task groups.
        let mut out_offsets = Vec::with_capacity(n_segs + 1);
        out_offsets.push(0usize);
        for i in 0..n_segs {
            let len = (local_offsets[i + 1] - local_offsets[i]) as usize;
            let k = if keep[i] { len.min(s) } else { 0 };
            out_offsets.push(out_offsets[i] + k);
        }
        let out_total = *out_offsets.last().unwrap();
        let emit_segs: Vec<u32> = (0..n_segs)
            .filter(|&i| out_offsets[i + 1] > out_offsets[i])
            .map(|i| i as u32)
            .collect();
        // Compaction groups: contiguous segment ranges covering ~64K output
        // elements each (one thread-block-batch per group, not per segment).
        const GROUP_OUT: usize = 64 * 1024;
        let mut groups: Vec<(usize, usize)> = Vec::new();
        {
            let mut i = 0usize;
            while i < n_segs {
                let start_out = out_offsets[i];
                let mut j = i + 1;
                while j < n_segs && out_offsets[j + 1] - start_out < GROUP_OUT {
                    j += 1;
                }
                groups.push((i, j));
                i = j;
            }
        }

        // 1. Move the batch to the device (once, reused across trials).
        let elems_dev =
            gpu.htod(&flat[batch.elem_lo as usize..batch.elem_hi as usize])?;
        let mut packed_dev = gpu.alloc::<u64>(elems_dev.len())?;

        #[allow(clippy::needless_range_loop)] // trial indexes both family and carry
        for trial in 0..family.len() {
            let (a, b) = family.coeffs(trial);
            // 2a. Random permutation via the min-wise hash.
            thrust::transform(gpu, &elems_dev, &mut packed_dev, move |v: u32| {
                pack(hash_with(a, b, v), v)
            });
            // 2b. Segmented sort within each adjacency list.
            thrust::segmented_sort(gpu, &mut packed_dev, &local_offsets);
            // 2c. Compact the top-s pairs of each kept segment (one task
            // per precomputed segment group, borrowing the offset arrays).
            let mut out_dev = gpu.alloc::<u64>(out_total)?;
            {
                let src = packed_dev.device_slice();
                let dst = out_dev.device_slice_mut();
                let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
                    Vec::with_capacity(groups.len());
                let mut rest = dst;
                for &(i, j) in &groups {
                    let start_out = out_offsets[i];
                    let group_k = out_offsets[j] - start_out;
                    let (head, tail) = rest.split_at_mut(group_k);
                    rest = tail;
                    let out_offsets = &out_offsets;
                    let local_offsets = &local_offsets;
                    tasks.push(Box::new(move || {
                        for seg in i..j {
                            let k = out_offsets[seg + 1] - out_offsets[seg];
                            if k == 0 {
                                continue;
                            }
                            let seg_lo = local_offsets[seg] as usize;
                            head[out_offsets[seg] - start_out..out_offsets[seg + 1] - start_out]
                                .copy_from_slice(&src[seg_lo..seg_lo + k]);
                        }
                    }));
                }
                gpu.launch(out_total, &KernelCost::gather(), tasks);
            }
            // 2d. Synchronous per-trial transfer back to the host, then
            // CPU-side record building with boundary-fragment merging.
            let host_out = gpu.dtoh(&out_dev);
            for &seg in &emit_segs {
                let i = seg as usize;
                let lo = out_offsets[i];
                let hi = out_offsets[i + 1];
                let pairs = &host_out[lo..hi];
                let is_first = i == 0;
                let is_last = i == n_segs - 1;
                if is_first && first_frag {
                    debug_assert_eq!(carry_node, Some(nodes[i]));
                    let mut merged = std::mem::take(&mut carry[trial]);
                    merged.extend_from_slice(pairs);
                    merged.sort_unstable();
                    merged.dedup();
                    merged.truncate(s);
                    if is_last && last_frag {
                        carry[trial] = merged; // list continues further
                    } else if merged.len() == s {
                        f(trial as u32, nodes[i], &merged);
                    }
                } else if is_last && last_frag {
                    carry[trial] = pairs.to_vec();
                } else if pairs.len() == s {
                    f(trial as u32, nodes[i], pairs);
                }
            }
        }
        carry_node = if last_frag {
            Some(nodes[nodes.len() - 1])
        } else {
            None
        };
    }
    debug_assert!(carry_node.is_none(), "carry must drain by the final batch");
    Ok(())
}

/// Run one full shingling pass on the device, materializing the records.
/// Prefer [`gpu_shingle_pass_foreach`] in memory-sensitive paths.
pub fn gpu_shingle_pass(
    gpu: &Gpu,
    input: &impl AdjacencyInput,
    s: usize,
    family: &HashFamily,
) -> Result<RawShingles, DeviceError> {
    let mut raw = RawShingles::new(s);
    gpu_shingle_pass_foreach(gpu, input, s, family, |trial, node, pairs| {
        raw.push(trial, node, pairs);
    })?;
    raw.mark_grouped();
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate;
    use crate::serial::shingle_pass;
    use gpclust_graph::generate::{planted_partition, PlantedConfig};
    use gpclust_graph::Csr;
    use gpclust_gpu::DeviceConfig;

    fn planted_graph(seed: u64) -> Csr {
        planted_partition(&PlantedConfig {
            group_sizes: vec![30, 20, 25],
            n_noise_vertices: 10,
            p_intra: 0.7,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed,
        })
        .graph
    }

    /// The GPU pass must aggregate to exactly the serial pass's result.
    #[test]
    fn matches_serial_oracle_single_batch() {
        let g = planted_graph(1);
        let family = HashFamily::new(25, 9);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 3);
        let serial = aggregate(&shingle_pass(&g, 2, &family));
        let device = aggregate(&gpu_shingle_pass(&gpu, &g, 2, &family).unwrap());
        assert_eq!(serial, device);
    }

    /// The tiny device (64 KiB) forces many batches and split lists; the
    /// merged result must still equal the serial oracle.
    #[test]
    fn matches_serial_oracle_with_forced_batching() {
        // ~8k edges → ~16k adjacency elements, several times the tiny
        // device's ~4.4k-element batch capacity.
        let g = planted_partition(&PlantedConfig {
            group_sizes: vec![120, 100, 80],
            n_noise_vertices: 20,
            p_intra: 0.5,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed: 2,
        })
        .graph;
        let family = HashFamily::new(12, 4);
        let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let serial = aggregate(&shingle_pass(&g, 2, &family));
        let device = aggregate(&gpu_shingle_pass(&gpu, &g, 2, &family).unwrap());
        assert_eq!(serial, device);
        assert!(
            gpu.counters().h2d_transfers > 1,
            "tiny device must have batched"
        );
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let g = planted_graph(3);
        let family = HashFamily::new(8, 5);
        let mut results = Vec::new();
        for workers in [1usize, 4] {
            let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), workers);
            results.push(aggregate(&gpu_shingle_pass(&gpu, &g, 3, &family).unwrap()));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn per_trial_d2h_traffic() {
        let g = planted_graph(4);
        let c = 10;
        let family = HashFamily::new(c, 6);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        gpu_shingle_pass(&gpu, &g, 2, &family).unwrap();
        let snap = gpu.counters();
        // One D2H per trial per batch (single batch here).
        assert_eq!(snap.d2h_transfers, c as u64);
        assert_eq!(snap.h2d_transfers, 1);
        assert!(snap.d2h_seconds > 0.0);
    }

    #[test]
    fn s_larger_than_all_degrees_yields_nothing() {
        let g = planted_graph(5);
        let family = HashFamily::new(5, 7);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let raw = gpu_shingle_pass(&gpu, &g, 10_000, &family).unwrap();
        assert!(aggregate(&raw).is_empty());
    }

    #[test]
    fn empty_graph_no_records() {
        let mut el = gpclust_graph::EdgeList::new();
        let g = Csr::from_edges(5, &mut el);
        let family = HashFamily::new(3, 8);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        let raw = gpu_shingle_pass(&gpu, &g, 2, &family).unwrap();
        assert!(raw.is_empty());
    }
}
