//! The GOS k-neighbor linkage baseline.
//!
//! The Sorcerer II GOS study clustered its ORFs with a "k-neighbor linkage
//! (k = 10) based graph heuristic": two adjacent sequences merge into the
//! same cluster when they share at least `k` neighbors. The paper's
//! qualitative comparison (Tables III/IV, Figure 5) pits gpClust against
//! this method, and its §IV-D analysis of why the fixed `k` misbehaves —
//! chaining dense groups of different characteristic sizes into loose
//! super-clusters — is exactly the behavior this implementation reproduces.

use gpclust_graph::{Csr, Partition, UnionFind, VertexId};

/// Number of common neighbors of `a` and `b` (sorted-list intersection,
/// early-exiting once `at_least` is reached).
fn shared_neighbors_at_least(g: &Csr, a: VertexId, b: VertexId, at_least: usize) -> bool {
    if at_least == 0 {
        return true;
    }
    let (na, nb) = (g.neighbors(a), g.neighbors(b));
    let mut count = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < na.len() && j < nb.len() {
        match na[i].cmp(&nb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                if count >= at_least {
                    return true;
                }
                i += 1;
                j += 1;
            }
        }
    }
    false
}

/// GOS-style clustering, edge-restricted variant: union every **edge**
/// `(u, v)` whose endpoints share at least `k` neighbors.
pub fn kneighbor_clusters_adjacent(g: &Csr, k: usize) -> Partition {
    let mut uf = UnionFind::new(g.n());
    for v in 0..g.n() as VertexId {
        for &u in g.neighbors(v) {
            // Each undirected edge once.
            if u > v && shared_neighbors_at_least(g, v, u, k) {
                uf.union(v, u);
            }
        }
    }
    Partition::from_union_find(&mut uf)
}

/// GOS-style clustering as the paper states it: union every **pair** of
/// vertices sharing at least `k` neighbors — no adjacency required (a
/// shared-nearest-neighbor linkage). Any pair with a common neighbor is at
/// distance ≤ 2, so candidates are enumerated through wedge centers; the
/// cost is Σ_w deg(w)², the classic SNN bound.
///
/// This is the variant whose fixed `k` "falsely group\[s\] potentially
/// unrelated vertices into the same cluster" when cluster characteristic
/// degrees vary (paper §IV-D) — the chaining gpClust is compared against.
pub fn kneighbor_clusters(g: &Csr, k: usize) -> Partition {
    let mut uf = UnionFind::new(g.n());
    if k == 0 {
        // Degenerate: every edge merges (a pair trivially shares ≥ 0).
        for v in 0..g.n() as VertexId {
            for &u in g.neighbors(v) {
                if u > v {
                    uf.union(v, u);
                }
            }
        }
        return Partition::from_union_find(&mut uf);
    }
    // Per-source common-neighbor counting over 2-hop neighborhoods.
    let mut count: std::collections::HashMap<VertexId, usize> = std::collections::HashMap::new();
    for u in 0..g.n() as VertexId {
        if (g.degree(u)) < k {
            continue; // cannot share k neighbors with anyone
        }
        count.clear();
        for &w in g.neighbors(u) {
            for &v in g.neighbors(w) {
                if v > u {
                    *count.entry(v).or_insert(0) += 1;
                }
            }
        }
        for (&v, &c) in count.iter() {
            if c >= k {
                uf.union(u, v);
            }
        }
    }
    Partition::from_union_find(&mut uf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpclust_graph::generate::{planted_partition, PlantedConfig};
    use gpclust_graph::EdgeList;

    #[test]
    fn clique_merges_when_k_small_enough() {
        // K6: every edge's endpoints share 4 common neighbors.
        let mut el = EdgeList::new();
        for a in 0..6u32 {
            for b in a + 1..6 {
                el.push(a, b);
            }
        }
        let g = Csr::from_edges(6, &mut el);
        let p4 = kneighbor_clusters(&g, 4);
        assert_eq!(p4.n_groups(), 1);
        let p5 = kneighbor_clusters(&g, 5);
        assert_eq!(p5.n_groups(), 6, "k=5 exceeds shared neighbors in K6");
    }

    #[test]
    fn path_graph_never_merges_for_k_ge_2() {
        // On a path, no pair shares more than one common neighbor.
        let mut el: EdgeList = (0..9u32).map(|v| (v, v + 1)).collect();
        let g = Csr::from_edges(10, &mut el);
        let p = kneighbor_clusters(&g, 2);
        assert_eq!(p.n_groups(), 10);
    }

    #[test]
    fn snn_merges_non_adjacent_pairs() {
        // Star: leaves 1..=4 all share the hub 0 — SNN with k=1 merges all
        // leaves even though no two leaves are adjacent.
        let mut el: EdgeList = (1..5u32).map(|v| (0, v)).collect();
        let g = Csr::from_edges(5, &mut el);
        let p = kneighbor_clusters(&g, 1);
        assert_eq!(p.group_of(1), p.group_of(4));
        // The edge-restricted variant does not merge anything here.
        let pa = kneighbor_clusters_adjacent(&g, 1);
        assert_eq!(pa.n_groups(), 5);
    }

    #[test]
    fn snn_at_least_as_coarse_as_adjacent_variant() {
        let pg = planted_partition(&PlantedConfig {
            group_sizes: vec![15, 10, 20],
            n_noise_vertices: 5,
            p_intra: 0.6,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed: 77,
        });
        for k in [2usize, 4, 8] {
            let snn = kneighbor_clusters(&pg.graph, k);
            let adj = kneighbor_clusters_adjacent(&pg.graph, k);
            // Every merge the adjacent variant makes, SNN makes too.
            for grp in adj.groups() {
                let first = snn.group_of(grp[0]);
                for &v in grp {
                    assert_eq!(snn.group_of(v), first, "k={k}");
                }
            }
            assert!(snn.n_groups() <= adj.n_groups());
        }
    }

    #[test]
    fn recovers_planted_dense_groups() {
        let pg = planted_partition(&PlantedConfig {
            group_sizes: vec![20, 25],
            n_noise_vertices: 5,
            p_intra: 0.9,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.0,
            seed: 31,
        });
        let p = kneighbor_clusters(&pg.graph, 5);
        for grp in pg.truth.groups() {
            let c0 = p.group_of(grp[0]);
            for &v in grp {
                assert_eq!(p.group_of(v), c0);
            }
        }
    }

    #[test]
    fn fixed_k_chains_differently_sized_groups() {
        // The paper's §IV-D failure mode: two dense groups joined by a
        // bridge of k shared neighbors get chained into one loose cluster
        // by the k-neighbor rule (while Shingling separates them).
        let mut el = EdgeList::new();
        // Group A: clique on 0..8; group B: clique on 8..16 — share vertex
        // pool via bridge vertices 16..19 adjacent to everything.
        for a in 0..8u32 {
            for b in a + 1..8 {
                el.push(a, b);
            }
        }
        for a in 8..16u32 {
            for b in a + 1..16 {
                el.push(a, b);
            }
        }
        for bridge in 16..19u32 {
            for v in 0..16u32 {
                el.push(bridge, v);
            }
        }
        // One direct A-B edge whose endpoints now share the 3 bridges.
        el.push(0, 8);
        let g = Csr::from_edges(19, &mut el);
        let p = kneighbor_clusters(&g, 3);
        assert_eq!(
            p.group_of(0),
            p.group_of(8),
            "fixed k merges across the bridge"
        );
    }

    #[test]
    fn k_zero_merges_all_edges() {
        let mut el: EdgeList = [(0, 1), (2, 3)].into_iter().collect();
        let g = Csr::from_edges(5, &mut el);
        let p = kneighbor_clusters(&g, 0);
        assert_eq!(p.group_of(0), p.group_of(1));
        assert_eq!(p.group_of(2), p.group_of(3));
        assert_ne!(p.group_of(0), p.group_of(2));
        assert_eq!(p.n_groups(), 3);
    }

    #[test]
    fn empty_graph_all_singletons() {
        let mut el = EdgeList::new();
        let g = Csr::from_edges(3, &mut el);
        assert_eq!(kneighbor_clusters(&g, 10).n_groups(), 3);
    }
}
