//! The incremental clustering engine: base + delta passes over a
//! persistent shingle index.
//!
//! The batch pipeline re-shingles the whole graph on every run. This
//! module keeps Pass I's output alive between runs instead: the
//! [`ShingleIndex`] holds the canonical shingle→vertex posting run, and a
//! *delta pass* re-shingles only the vertices whose adjacency lists a
//! [`GraphDelta`] actually changed. Because a vertex's min-wise shingles
//! are a pure function of its own list, retracting the touched vertices'
//! records from the stored index and merging in the freshly-computed ones
//! reproduces — bit for bit — the canonical run a from-scratch Pass I
//! over the union graph would emit. Passes II/III are cheap relative to
//! Pass I and always re-run from the merged index, so the resulting
//! [`Partition`] is *identical* to re-clustering the union graph from
//! scratch, across every schedule axis (kernels × overlap × aggregation ×
//! components × shards × fleets × faults).
//!
//! Refresh policy: [`RefreshMode::Auto`] prices the delta pass
//! ([`autotune::predict_delta`]) against a full recluster
//! ([`autotune::predict`]) and re-clusters from scratch when that is
//! cheaper — large deltas pay index upkeep (retraction scan, k-way merge,
//! re-inversion) without saving much Pass-I work.
//!
//! Durability: with an attached [`IndexStore`], every flush seals a new
//! snapshot generation (index run + union graph + partition) through the
//! checkpoint layer's atomic-manifest machinery. A crash between flushes
//! loses only the pending (unflushed) delta; resume picks up the last
//! sealed generation and refuses stale stores with typed
//! [`CheckpointError`]s.

use gpclust_gpu::{DeviceError, Gpu};
use gpclust_graph::{Csr, GraphDelta, Partition, VertexId};

use crate::autotune::{self, PassShape, PlanAxes, Prediction, Sharing, WorkloadShape};
use crate::checkpoint::CheckpointError;
use crate::index::{IndexStore, ShingleIndex};
use crate::multi_gpu::MultiGpuClust;
use crate::params::{PlanMode, ShinglingParams};
use crate::plan::Plan;
use crate::shingle::AdjacencyInput;
use crate::spill::SpillStats;
use crate::timing::RecoveryReport;
use std::fmt;

/// What can go wrong while driving the engine.
#[derive(Debug)]
pub enum EngineError {
    /// Fleet construction or parameter validation failed.
    Config(String),
    /// A device pass failed beyond the fault policy's patience.
    Device(DeviceError),
    /// The index store refused a snapshot (save, bootstrap, or resume).
    Checkpoint(CheckpointError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(msg) => write!(f, "engine configuration: {msg}"),
            EngineError::Device(e) => write!(f, "device pass failed: {e}"),
            EngineError::Checkpoint(e) => write!(f, "index store: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DeviceError> for EngineError {
    fn from(e: DeviceError) -> Self {
        EngineError::Device(e)
    }
}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

/// How [`IncrementalEngine::flush`] refreshes the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshMode {
    /// Price both paths with the cost model; take the cheaper.
    #[default]
    Auto,
    /// Always run the delta pass, however large the delta.
    Delta,
    /// Always re-cluster the union graph from scratch.
    Full,
}

/// What a flush decided and why. Both predictions are populated only
/// under [`RefreshMode::Auto`] (forced modes price nothing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshDecision {
    /// Whether the engine re-clustered from scratch instead of running a
    /// delta pass.
    pub full: bool,
    /// Vertices whose adjacency lists actually changed.
    pub touched: usize,
    /// Union-graph vertex count after the flush.
    pub n_vertices: usize,
    /// Modeled delta-pass makespan.
    pub delta_predicted: Option<Prediction>,
    /// Modeled full-recluster makespan.
    pub full_predicted: Option<Prediction>,
}

/// The union graph with every untouched adjacency list masked to zero
/// length: full-width offsets (so node ids — and therefore the packed
/// record keys — are unchanged), but only the touched vertices' neighbors
/// in the flat array. Kernels skip empty lists, so a pass over this input
/// emits exactly the touched vertices' records and nothing else.
pub(crate) struct MaskedAdjacency {
    offsets: Vec<u64>,
    flat: Vec<u32>,
}

impl MaskedAdjacency {
    /// Mask `union` down to `touched` (sorted unique vertex ids).
    pub(crate) fn of(union: &Csr, touched: &[VertexId]) -> MaskedAdjacency {
        let n = union.n();
        let kept: usize = touched.iter().map(|&v| union.degree(v)).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut flat = Vec::with_capacity(kept);
        offsets.push(0u64);
        let mut next = touched.iter().copied().peekable();
        for v in 0..n as u32 {
            if next.peek() == Some(&v) {
                next.next();
                flat.extend_from_slice(union.neighbors(v));
            }
            offsets.push(flat.len() as u64);
        }
        MaskedAdjacency { offsets, flat }
    }
}

impl AdjacencyInput for MaskedAdjacency {
    fn n_nodes(&self) -> usize {
        self.offsets.len() - 1
    }
    fn offsets(&self) -> &[u64] {
        &self.offsets
    }
    fn flat(&self) -> &[u32] {
        &self.flat
    }
}

/// The long-lived clustering engine: a frozen base graph, its canonical
/// shingle index and partition, and a pending [`GraphDelta`] batched
/// until the next [`flush`](IncrementalEngine::flush).
pub struct IncrementalEngine {
    /// Effective parameters — axes resolved once at bootstrap (or adopted
    /// from the store at resume) and pinned manual thereafter, so the
    /// index's axes record stays stable across flushes.
    effective: ShinglingParams,
    fleet: MultiGpuClust,
    base: Csr,
    index: ShingleIndex,
    partition: Partition,
    pending: GraphDelta,
    store: Option<IndexStore>,
    refresh: RefreshMode,
    generation: u64,
    spill: SpillStats,
    recovery: RecoveryReport,
}

impl IncrementalEngine {
    /// Cluster `base` from scratch and seed the engine with its canonical
    /// index and partition. Under [`PlanMode::Auto`] the schedule axes
    /// are argmin'd against `base`'s shape here, once, then pinned.
    pub fn bootstrap(
        params: &ShinglingParams,
        gpus: Vec<Gpu>,
        base: Csr,
    ) -> Result<IncrementalEngine, EngineError> {
        let (_, mut effective) = Plan::lower_auto(params, &gpus, base.offsets(), base.n())?;
        effective.plan = PlanMode::Manual;
        let fleet = MultiGpuClust::new(effective, gpus).map_err(EngineError::Config)?;
        let mut engine = IncrementalEngine {
            effective,
            fleet,
            // Placeholder; the bootstrap refresh installs `base` as the
            // first sealed state.
            base: Csr::from_raw(vec![0], Vec::new()),
            index: ShingleIndex::new(effective.s1),
            partition: Partition::singletons(0),
            pending: GraphDelta::new(),
            store: None,
            refresh: RefreshMode::Auto,
            generation: 0,
            spill: SpillStats::default(),
            recovery: RecoveryReport::default(),
        };
        engine.refresh(base, &[], true)?;
        Ok(engine)
    }

    /// Reopen a sealed store and continue from its last generation. The
    /// store's axes record is authoritative: manual `params` must agree
    /// on every axis (typed refusal otherwise), while [`PlanMode::Auto`]
    /// adopts the stored schedule axes (still refusing any axis the user
    /// forced to a conflicting value).
    pub fn resume(
        params: &ShinglingParams,
        gpus: Vec<Gpu>,
        store: IndexStore,
    ) -> Result<IncrementalEngine, EngineError> {
        let effective = match params.plan {
            PlanMode::Manual => *params,
            PlanMode::Auto(forced) => store.adopt_axes(params, forced)?,
        };
        let snapshot = store.load(&effective, effective.mem_budget, gpus.len())?;
        let fleet = MultiGpuClust::new(effective, gpus).map_err(EngineError::Config)?;
        Ok(IncrementalEngine {
            effective,
            fleet,
            base: snapshot.graph,
            index: snapshot.index,
            partition: snapshot.partition,
            pending: GraphDelta::new(),
            store: Some(store),
            refresh: RefreshMode::Auto,
            generation: snapshot.generation,
            spill: SpillStats::default(),
            recovery: RecoveryReport::default(),
        })
    }

    /// Attach a durable store, sealing the engine's current state as its
    /// snapshot generation immediately so a crash before the first flush
    /// still resumes.
    pub fn with_store(mut self, store: IndexStore) -> Result<IncrementalEngine, EngineError> {
        let stats = store.save(
            self.generation,
            &self.index,
            &self.base,
            &self.partition,
            &self.effective,
            self.effective.mem_budget,
            self.fleet.n_devices(),
        )?;
        self.spill.merge(&stats);
        self.store = Some(store);
        Ok(self)
    }

    /// Set the refresh policy (default [`RefreshMode::Auto`]).
    pub fn with_refresh(mut self, refresh: RefreshMode) -> IncrementalEngine {
        self.refresh = refresh;
        self
    }

    /// The effective (pinned) parameters every pass runs under.
    pub fn params(&self) -> &ShinglingParams {
        &self.effective
    }

    /// Vertices in the sealed base graph (pending additions excluded).
    pub fn n_vertices(&self) -> usize {
        self.base.n()
    }

    /// The sealed base graph.
    pub fn graph(&self) -> &Csr {
        &self.base
    }

    /// The canonical shingle index over the base graph.
    pub fn index(&self) -> &ShingleIndex {
        &self.index
    }

    /// The current partition (matches the base graph, not the pending
    /// delta).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Snapshot generation of the sealed state.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Pending (unflushed) edge insertions.
    pub fn pending_edges(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is waiting for a flush.
    pub fn is_clean(&self) -> bool {
        self.pending.is_empty()
    }

    /// Accumulated spill traffic across all flushes.
    pub fn spill_stats(&self) -> SpillStats {
        self.spill
    }

    /// Accumulated fault-recovery tallies across all flushes.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Queue `k` fresh vertices after the current union range.
    pub fn add_vertices(&mut self, k: usize) {
        self.pending.add_vertices(k);
    }

    /// Queue the undirected edge `(a, b)`; endpoints past the current
    /// range implicitly grow it. Takes effect at the next flush.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) {
        self.pending.add_edge(a, b);
    }

    /// Fold a whole prepared delta into the pending batch.
    pub fn apply(&mut self, delta: &GraphDelta) {
        self.pending.merge(delta);
    }

    /// Family membership of `v` in the sealed partition: the group id,
    /// or `None` for vertices outside the sealed range (pending, never
    /// flushed) or ones the partition leaves ungrouped.
    pub fn query(&self, v: VertexId) -> Option<u32> {
        self.partition
            .membership()
            .get(v as usize)
            .copied()
            .flatten()
    }

    /// Apply the pending delta: compact the union graph, refresh the
    /// index (delta pass or full recluster per the policy), re-run
    /// Passes II/III from the merged index, and seal a new generation in
    /// the attached store. A no-op (with `touched == 0`) when nothing is
    /// pending. The resulting partition is bit-identical to clustering
    /// the union graph from scratch.
    pub fn flush(&mut self) -> Result<RefreshDecision, EngineError> {
        if self.pending.is_empty() {
            return Ok(RefreshDecision {
                full: false,
                touched: 0,
                n_vertices: self.base.n(),
                delta_predicted: None,
                full_predicted: None,
            });
        }
        let pending = std::mem::take(&mut self.pending);
        let union = pending.apply(&self.base);
        let touched = pending.touched(&self.base);
        let decision = self.decide(&union, &touched);
        self.refresh(union, &touched, decision.full)?;
        Ok(decision)
    }

    /// Price both refresh paths and pick one per the policy.
    fn decide(&self, union: &Csr, touched: &[VertexId]) -> RefreshDecision {
        let base = RefreshDecision {
            full: false,
            touched: touched.len(),
            n_vertices: union.n(),
            delta_predicted: None,
            full_predicted: None,
        };
        match self.refresh {
            RefreshMode::Delta => base,
            RefreshMode::Full => RefreshDecision { full: true, ..base },
            RefreshMode::Auto => {
                let w = WorkloadShape::from_input(union.n(), union.offsets(), &self.effective);
                // Compact offsets over just the touched lists — same
                // PassShape as the masked input (empty lists are skipped
                // either way).
                let mut offsets = Vec::with_capacity(touched.len() + 1);
                offsets.push(0u64);
                let mut acc = 0u64;
                for &v in touched {
                    acc += union.degree(v) as u64;
                    offsets.push(acc);
                }
                let shape = PassShape::from_offsets(&offsets, self.effective.c1, self.effective.s1);
                let full_predicted = autotune::predict(
                    PlanAxes::of(&self.effective),
                    &w,
                    self.fleet.gpus(),
                    Sharing::Weighted,
                );
                let delta_predicted = autotune::predict_delta(
                    &self.effective,
                    &w,
                    shape,
                    self.index.len(),
                    self.fleet.gpus(),
                );
                let full = match (&delta_predicted, &full_predicted) {
                    (Some(d), Some(f)) => d.seconds >= f.seconds,
                    // No surviving device to price on — the pass itself
                    // will surface the real error; prefer the delta.
                    _ => false,
                };
                RefreshDecision {
                    full,
                    delta_predicted,
                    full_predicted,
                    ..base
                }
            }
        }
    }

    /// One refresh: delta pass (retract + merge) or full recompute of the
    /// index, then Passes II/III from the merged index, then seal.
    fn refresh(&mut self, union: Csr, touched: &[VertexId], full: bool) -> Result<(), EngineError> {
        if full {
            self.index = ShingleIndex::new(self.effective.s1);
            let (fresh, _, rec) =
                self.fleet
                    .gather_pass1_records(&self.effective, &union, &mut self.spill)?;
            self.recovery.merge(&rec);
            self.index.merge(fresh);
        } else {
            let masked = MaskedAdjacency::of(&union, touched);
            let (fresh, _, rec) =
                self.fleet
                    .gather_pass1_records(&self.effective, &masked, &mut self.spill)?;
            self.recovery.merge(&rec);
            self.index.retract(touched);
            self.index.merge(fresh);
        }
        let first = self.index.to_graph();
        let (partition, _, rec) =
            self.fleet
                .partition_from_first(&self.effective, union.n(), &first, &mut self.spill)?;
        self.recovery.merge(&rec);
        self.base = union;
        self.partition = partition;
        self.generation += 1;
        if let Some(store) = &self.store {
            let stats = store.save(
                self.generation,
                &self.index,
                &self.base,
                &self.partition,
                &self.effective,
                self.effective.mem_budget,
                self.fleet.n_devices(),
            )?;
            self.spill.merge(&stats);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{
        AggregationMode, ComponentsMode, FaultPolicy, PipelineMode, ShingleKernel,
    };
    use crate::serial::SerialShingling;
    use gpclust_gpu::{DeviceConfig, FaultKind, FaultPlan, FaultSite};
    use gpclust_graph::generate::{planted_partition, PlantedConfig};
    use gpclust_graph::EdgeList;

    /// A scratch directory for store round-trips, removed on drop.
    struct ScratchDir(std::path::PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> ScratchDir {
            let dir =
                std::env::temp_dir().join(format!("gpclust-engine-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            ScratchDir(dir)
        }
        fn path(&self) -> &std::path::Path {
            &self.0
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn planted(seed: u64) -> Csr {
        planted_partition(&PlantedConfig {
            group_sizes: vec![6, 5, 7],
            n_noise_vertices: 6,
            p_intra: 0.9,
            max_intra_degree: 8.0,
            inter_edges_per_vertex: 1.0,
            seed,
        })
        .graph
    }

    fn light(seed: u64) -> ShinglingParams {
        ShinglingParams::light(seed)
    }

    fn fleet(k: usize) -> Vec<Gpu> {
        (0..k)
            .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
            .collect()
    }

    /// Split a graph's edges: the first `keep` fraction forms the base,
    /// the rest arrive as a delta (same vertex range throughout).
    fn split(g: &Csr, keep_num: usize, keep_den: usize) -> (Csr, GraphDelta) {
        let mut all: Vec<(VertexId, VertexId)> = g
            .iter()
            .flat_map(|(v, ns)| {
                ns.iter()
                    .filter(move |&&u| v < u)
                    .map(move |&u| (v, u))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        let cut = all.len() * keep_num / keep_den;
        let mut base_edges = EdgeList::new();
        for &(a, b) in &all[..cut] {
            base_edges.push(a, b);
        }
        let base = Csr::from_edges(g.n(), &mut base_edges);
        let mut delta = GraphDelta::new();
        for &(a, b) in &all[cut..] {
            delta.add_edge(a, b);
        }
        (base, delta)
    }

    #[test]
    fn flush_matches_serial_oracle_on_union() {
        let g = planted(11);
        let (base, delta) = split(&g, 2, 3);
        let params = light(11);
        let mut engine = IncrementalEngine::bootstrap(&params, fleet(2), base).unwrap();
        engine.apply(&delta);
        let decision = engine.flush().unwrap();
        assert!(decision.touched > 0);
        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
        assert_eq!(*engine.partition(), oracle);
        assert_eq!(engine.graph().offsets(), g.offsets());
        assert_eq!(engine.graph().targets(), g.targets());
    }

    #[test]
    fn incremental_index_is_bit_identical_to_from_scratch() {
        let g = planted(12);
        let (base, delta) = split(&g, 1, 2);
        let params = light(12);
        let mut engine = IncrementalEngine::bootstrap(&params, fleet(1), base).unwrap();
        engine.apply(&delta);
        engine.flush().unwrap();
        let scratch = IncrementalEngine::bootstrap(&params, fleet(1), g).unwrap();
        assert_eq!(engine.index(), scratch.index(), "index must be canonical");
    }

    #[test]
    fn empty_flush_is_a_noop() {
        let g = planted(13);
        let params = light(13);
        let mut engine = IncrementalEngine::bootstrap(&params, fleet(1), g).unwrap();
        let gen = engine.generation();
        let decision = engine.flush().unwrap();
        assert_eq!(decision.touched, 0);
        assert_eq!(engine.generation(), gen);
    }

    #[test]
    fn duplicate_edges_touch_nothing() {
        let g = planted(14);
        let params = light(14);
        let mut engine = IncrementalEngine::bootstrap(&params, fleet(1), g.clone()).unwrap();
        let before = engine.partition().clone();
        // Re-insert an existing edge: flush runs, but touches no vertex.
        let (v, ns) = g.iter().find(|(_, ns)| !ns.is_empty()).unwrap();
        engine.add_edge(v, ns[0]);
        let decision = engine.flush().unwrap();
        assert_eq!(decision.touched, 0);
        assert_eq!(*engine.partition(), before);
    }

    #[test]
    fn vertex_growth_and_new_edges_match_oracle() {
        let g = planted(15);
        let params = light(15);
        let n = g.n();
        let mut engine = IncrementalEngine::bootstrap(&params, fleet(2), g.clone()).unwrap();
        engine.add_vertices(3);
        engine.add_edge(n as u32, 0);
        engine.add_edge(n as u32 + 1, n as u32);
        engine.flush().unwrap();
        // Union graph rebuilt from scratch.
        let mut edges = EdgeList::new();
        for (v, ns) in g.iter() {
            for &u in ns.iter().filter(|&&u| v < u) {
                edges.push(v, u);
            }
        }
        edges.push(n as u32, 0);
        edges.push(n as u32 + 1, n as u32);
        let union = Csr::from_edges(n + 3, &mut edges);
        let oracle = SerialShingling::new(params).unwrap().cluster(&union);
        assert_eq!(*engine.partition(), oracle);
        assert_eq!(engine.n_vertices(), n + 3);
        // The isolated extra vertex answers exactly as the oracle does.
        assert_eq!(engine.query(n as u32 + 2), oracle.group_of(n as u32 + 2));
        // A vertex past the union range is unknown.
        assert_eq!(engine.query(n as u32 + 99), None);
    }

    #[test]
    fn every_axis_combination_matches_from_scratch() {
        let g = planted(16);
        let (base, delta) = split(&g, 3, 4);
        for kernel in [ShingleKernel::SortCompact, ShingleKernel::FusedSelect] {
            for aggregation in [AggregationMode::Host, AggregationMode::Device] {
                for components in [ComponentsMode::Host, ComponentsMode::Device] {
                    for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
                        let params = light(16)
                            .with_kernel(kernel)
                            .with_aggregation(aggregation)
                            .with_components(components)
                            .with_mode(mode);
                        let mut engine =
                            IncrementalEngine::bootstrap(&params, fleet(2), base.clone()).unwrap();
                        engine.apply(&delta);
                        engine.flush().unwrap();
                        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
                        assert_eq!(
                            *engine.partition(),
                            oracle,
                            "kernel={kernel:?} agg={aggregation:?} comp={components:?} mode={mode:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_budget_delta_matches_oracle() {
        let g = planted(17);
        let (base, delta) = split(&g, 1, 2);
        let params = light(17).with_mem_budget(1 << 20);
        let mut engine = IncrementalEngine::bootstrap(&params, fleet(2), base).unwrap();
        engine.apply(&delta);
        engine.flush().unwrap();
        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
        assert_eq!(*engine.partition(), oracle);
    }

    #[test]
    fn faulty_device_delta_matches_oracle() {
        let g = planted(18);
        let (base, delta) = split(&g, 1, 2);
        let params = light(18);
        let gpus = fleet(2);
        gpus[0].set_fault_plan(
            FaultPlan::scheduled()
                .with_fault(FaultSite::Kernel, 1, FaultKind::DeviceLost)
                .with_device(0),
        );
        let mut engine = IncrementalEngine::bootstrap(&params, gpus, base).unwrap();
        engine.apply(&delta);
        engine.flush().unwrap();
        assert!(engine.recovery().any(), "the fault plan must have fired");
        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
        assert_eq!(*engine.partition(), oracle);
    }

    #[test]
    fn forced_full_reclusters_and_matches() {
        let g = planted(19);
        let (base, delta) = split(&g, 1, 2);
        let params = light(19);
        let mut engine = IncrementalEngine::bootstrap(&params, fleet(1), base)
            .unwrap()
            .with_refresh(RefreshMode::Full);
        engine.apply(&delta);
        let decision = engine.flush().unwrap();
        assert!(decision.full);
        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
        assert_eq!(*engine.partition(), oracle);
    }

    #[test]
    fn auto_decision_prices_both_paths() {
        let g = planted(20);
        let (base, delta) = split(&g, 9, 10);
        let params = light(20);
        let mut engine = IncrementalEngine::bootstrap(&params, fleet(1), base).unwrap();
        engine.apply(&delta);
        let decision = engine.flush().unwrap();
        assert!(decision.delta_predicted.is_some());
        assert!(decision.full_predicted.is_some());
        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
        assert_eq!(*engine.partition(), oracle);
    }

    #[test]
    fn store_roundtrip_resumes_mid_stream() {
        let dir = ScratchDir::new("roundtrip");
        let g = planted(21);
        let (base, delta) = split(&g, 1, 2);
        let params = light(21);
        let engine = IncrementalEngine::bootstrap(&params, fleet(2), base)
            .unwrap()
            .with_store(IndexStore::new(dir.path()))
            .unwrap();
        let gen = engine.generation();
        drop(engine); // crash between flushes: pending delta is lost, state is sealed
        let mut resumed =
            IncrementalEngine::resume(&params, fleet(2), IndexStore::new(dir.path())).unwrap();
        assert_eq!(resumed.generation(), gen);
        resumed.apply(&delta);
        resumed.flush().unwrap();
        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
        assert_eq!(*resumed.partition(), oracle);
        // And the flushed generation resumes too.
        let again =
            IncrementalEngine::resume(&params, fleet(2), IndexStore::new(dir.path())).unwrap();
        assert_eq!(again.generation(), gen + 1);
        assert_eq!(*again.partition(), oracle);
    }

    #[test]
    fn resume_refuses_a_different_fleet_size() {
        let dir = ScratchDir::new("fleet-size");
        let g = planted(22);
        let params = light(22);
        let _engine = IncrementalEngine::bootstrap(&params, fleet(2), g)
            .unwrap()
            .with_store(IndexStore::new(dir.path()))
            .unwrap();
        match IncrementalEngine::resume(&params, fleet(1), IndexStore::new(dir.path())) {
            Err(EngineError::Checkpoint(CheckpointError::AxesMismatch { axis, .. })) => {
                assert_eq!(axis, "n_devices");
            }
            Err(other) => panic!("expected axes refusal, got {other:?}"),
            Ok(_) => panic!("resume must refuse a different fleet size"),
        }
    }

    #[test]
    fn auto_plan_resume_adopts_stored_axes() {
        let dir = ScratchDir::new("adopt-axes");
        let g = planted(23);
        let params = light(23)
            .with_kernel(ShingleKernel::FusedSelect)
            .with_mode(PipelineMode::Overlapped);
        let engine = IncrementalEngine::bootstrap(&params, fleet(1), g)
            .unwrap()
            .with_store(IndexStore::new(dir.path()))
            .unwrap();
        drop(engine);
        // Auto plan at resume: adopts the stored schedule axes instead of
        // refusing on defaults.
        let auto = light(23).with_plan_auto();
        let resumed =
            IncrementalEngine::resume(&auto, fleet(1), IndexStore::new(dir.path())).unwrap();
        assert_eq!(resumed.params().kernel, ShingleKernel::FusedSelect);
        assert_eq!(resumed.params().mode, PipelineMode::Overlapped);
        assert_eq!(resumed.params().plan, PlanMode::Manual);
    }

    #[test]
    fn masked_adjacency_preserves_node_ids() {
        let g = planted(24);
        let touched: Vec<VertexId> = (0..g.n() as u32).filter(|v| v % 3 == 0).collect();
        let masked = MaskedAdjacency::of(&g, &touched);
        assert_eq!(masked.n_nodes(), g.n());
        for v in 0..g.n() as u32 {
            if touched.binary_search(&v).is_ok() {
                assert_eq!(masked.list(v as usize), g.neighbors(v));
            } else {
                assert!(masked.list(v as usize).is_empty());
            }
        }
    }

    #[test]
    fn repeated_small_flushes_track_the_oracle() {
        let g = planted(25);
        let params = light(25);
        // Collect all edges, seed with the first third, then stream the
        // rest in four flushes.
        let mut all: Vec<(VertexId, VertexId)> = g
            .iter()
            .flat_map(|(v, ns)| {
                ns.iter()
                    .filter(move |&&u| v < u)
                    .map(move |&u| (v, u))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        let cut = all.len() / 3;
        let mut base_edges = EdgeList::new();
        for &(a, b) in &all[..cut] {
            base_edges.push(a, b);
        }
        let base = Csr::from_edges(g.n(), &mut base_edges);
        let mut engine = IncrementalEngine::bootstrap(&params, fleet(2), base).unwrap();
        let rest = &all[cut..];
        let chunk = rest.len().div_ceil(4);
        let mut grown = all[..cut].to_vec();
        for batch in rest.chunks(chunk.max(1)) {
            for &(a, b) in batch {
                engine.add_edge(a, b);
                grown.push((a, b));
            }
            engine.flush().unwrap();
            let mut edges = EdgeList::new();
            for &(a, b) in &grown {
                edges.push(a, b);
            }
            let stage = Csr::from_edges(g.n(), &mut edges);
            let oracle = SerialShingling::new(params).unwrap().cluster(&stage);
            assert_eq!(*engine.partition(), oracle);
        }
        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
        assert_eq!(*engine.partition(), oracle);
    }

    #[test]
    fn fault_policy_degrade_composes_with_delta() {
        let g = planted(26);
        let (base, delta) = split(&g, 1, 2);
        let params = light(26).with_fault_policy(FaultPolicy {
            degrade_to_host: true,
            ..FaultPolicy::default()
        });
        let mut engine = IncrementalEngine::bootstrap(&params, fleet(1), base).unwrap();
        engine.apply(&delta);
        engine.flush().unwrap();
        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
        assert_eq!(*engine.partition(), oracle);
    }
}
