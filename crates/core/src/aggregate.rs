//! CPU-side shingle aggregation — "compute shingle graph" in Figure 3.
//!
//! Input: the raw `(trial, node, top-s pairs)` records streamed back from
//! the device, batch by batch. This step performs the two CPU duties the
//! paper assigns to the host:
//!
//! 1. **Fragment merging** — when an adjacency list was split between two
//!    job batches, its per-batch top-s candidate lists are merged and the
//!    globally smallest s re-selected ("the CPU has to combine the shingle
//!    results for the split adjacency lists after it receives shingles from
//!    the GPU"). Nodes whose merged candidate count is below s produce no
//!    shingle, matching the ≥ s-links rule.
//! 2. **Inversion/grouping** — "a sorting is done to gather all vertices
//!    that generated each shingle", yielding the `<s_j, L(s_j)>` tuples
//!    that form the bipartite shingle graph for the next pass.

use crate::minwise::{unpack_element, PackedHash};
use crate::shingle::{shingle_key, RawShingles, ShingleKey};
use gpclust_graph::ShingleGraph;
use rayon::prelude::*;

/// Below this length the rayon fork/join overhead outweighs the parallel
/// sort's gain, so the aggregation sorts serially. The packed values are
/// unique (each carries its record index in the low bits), and the one
/// keyed sort only ties on fragments of the same `(node, trial)` — whose
/// merge re-sorts and dedups — so the parallel unstable sorts leave the
/// aggregation deterministic.
const PAR_SORT_MIN: usize = 1 << 15;

/// `sort_unstable`, parallelized for inputs big enough to pay for it.
#[inline]
fn sort_packed(packed: &mut [u128]) {
    if packed.len() >= PAR_SORT_MIN {
        packed.par_sort_unstable();
    } else {
        packed.sort_unstable();
    }
}

/// Aggregate raw records into the bipartite shingle graph.
///
/// This is the largest CPU stage of gpClust (it dominates the "CPU" column
/// of Table I), so it works in flat column arrays with exactly four big
/// sorts/scans and no per-record heap allocation.
pub fn aggregate(raw: &RawShingles) -> ShingleGraph {
    let s = raw.s();
    let n_rec = raw.len();

    // --- 1. Merge fragments of the same (node, trial). ---
    //
    // Grouped inputs (serial pass, GPU pass after its boundary pre-merge)
    // skip this entirely; ungrouped inputs pay one sort + linear merge.
    if raw.is_grouped() {
        // Grouped fast path: no merging, no column copies — pack
        // (key, node, record-index) straight from the raw storage and pull
        // element ids back out of it at emission time.
        assert!(n_rec < (1 << 32), "too many shingle records");
        let mut packed: Vec<u128> = (0..n_rec)
            .map(|i| {
                let pairs = raw.pairs_of(i);
                debug_assert_eq!(pairs.len(), s);
                let key = shingle_key(raw.trial(i), pairs.iter().map(|&p| unpack_element(p)));
                ((key as u128) << 64) | ((raw.node(i) as u128) << 32) | i as u128
            })
            .collect();
        sort_packed(&mut packed);
        return invert_packed(s, &packed, |rep, out| {
            out.extend(raw.pairs_of(rep).iter().map(|&p| unpack_element(p)));
        });
    }

    let mut fin_keys: Vec<ShingleKey> = Vec::with_capacity(n_rec);
    let mut fin_nodes: Vec<u32> = Vec::with_capacity(n_rec);
    let mut fin_elements: Vec<u32> = Vec::with_capacity(n_rec * s);
    {
        let mut order: Vec<u32> = (0..n_rec as u32).collect();
        let group_key =
            |&i: &u32| ((raw.node(i as usize) as u64) << 32) | raw.trial(i as usize) as u64;
        if order.len() >= PAR_SORT_MIN {
            order.par_sort_unstable_by_key(group_key);
        } else {
            order.sort_unstable_by_key(group_key);
        }
        let mut merged: Vec<PackedHash> = Vec::with_capacity(2 * s);
        let mut gi = 0usize;
        while gi < order.len() {
            let first = order[gi] as usize;
            let (trial, node) = (raw.trial(first), raw.node(first));
            let mut gj = gi + 1;
            merged.clear();
            merged.extend_from_slice(raw.pairs_of(first));
            while gj < order.len() {
                let next = order[gj] as usize;
                if raw.trial(next) != trial || raw.node(next) != node {
                    break;
                }
                merged.extend_from_slice(raw.pairs_of(next));
                gj += 1;
            }
            if merged.len() >= s {
                merged.sort_unstable();
                merged.dedup(); // a fragment boundary duplicate is harmless but possible
                if merged.len() >= s {
                    merged.truncate(s);
                    fin_nodes.push(node);
                    for &p in &merged {
                        fin_elements.push(unpack_element(p));
                    }
                    fin_keys.push(shingle_key(
                        trial,
                        merged.iter().map(|&p| unpack_element(p)),
                    ));
                }
            }
            gi = gj;
        }
    }

    // --- 2. Invert: group by shingle key. ---
    let n_fin = fin_keys.len();
    assert!(n_fin < (1 << 32), "too many shingle records");
    let mut packed: Vec<u128> = (0..n_fin)
        .map(|i| ((fin_keys[i] as u128) << 64) | ((fin_nodes[i] as u128) << 32) | i as u128)
        .collect();
    sort_packed(&mut packed);
    invert_packed(s, &packed, |rep, out| {
        out.extend_from_slice(&fin_elements[rep * s..(rep + 1) * s]);
    })
}

/// Streaming shingle aggregation: records flow in one at a time (from
/// [`crate::serial::shingle_pass_foreach`] or the device pass), are packed
/// immediately into the 128-bit sort representation, and never exist as a
/// separate raw-record container. This nearly halves the peak memory of the
/// dominant aggregation stage relative to materialize-then-aggregate.
///
/// Only *grouped* streams are supported (one record per `(trial, node)`,
/// exactly `s` sorted pairs each) — which both pass implementations
/// guarantee.
#[derive(Debug)]
pub struct StreamAggregator {
    s: usize,
    packed: Vec<u128>,
    elements: Vec<u32>,
}

impl StreamAggregator {
    /// A fresh aggregator for shingle size `s`.
    pub fn new(s: usize) -> Self {
        StreamAggregator {
            s,
            packed: Vec::new(),
            elements: Vec::new(),
        }
    }

    /// Number of records absorbed so far.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// True if no records were absorbed.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Absorb one record: `pairs` sorted ascending, exactly `s` of them.
    #[inline]
    pub fn push(&mut self, trial: u32, node: u32, pairs: &[PackedHash]) {
        debug_assert_eq!(pairs.len(), self.s);
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]));
        let idx = (self.elements.len() / self.s) as u128;
        assert!(idx < (1 << 32), "too many shingle records");
        for &p in pairs {
            self.elements.push(unpack_element(p));
        }
        let key = shingle_key(trial, pairs.iter().map(|&p| unpack_element(p)));
        self.packed
            .push(((key as u128) << 64) | ((node as u128) << 32) | idx);
    }

    /// Sort, group and build the bipartite shingle graph.
    pub fn finish(mut self) -> ShingleGraph {
        sort_packed(&mut self.packed);
        let elements = self.elements;
        let s = self.s;
        invert_packed(s, &self.packed, |rep, out| {
            out.extend_from_slice(&elements[rep * s..(rep + 1) * s]);
        })
    }
}

/// Group sorted packed `(key << 64 | node << 32 | record-index)` values
/// into the bipartite shingle graph. `push_elements(rep, out)` appends the
/// `s` element ids of the record with index `rep`.
///
/// "A sorting is done to gather all vertices that generated each shingle" —
/// the caller's 128-bit sort is the dominant CPU cost of the pipeline;
/// the comparisons run fully in-register with no memory indirection.
fn invert_packed(
    s: usize,
    packed: &[u128],
    push_elements: impl Fn(usize, &mut Vec<u32>),
) -> ShingleGraph {
    let n_fin = packed.len();
    let mut keys: Vec<u64> = Vec::new();
    let mut elements: Vec<u32> = Vec::new();
    let mut gen_offsets: Vec<u64> = vec![0];
    let mut generators: Vec<u32> = Vec::with_capacity(n_fin);
    let mut i = 0usize;
    while i < n_fin {
        let key = (packed[i] >> 64) as u64;
        let rep = (packed[i] & 0xFFFF_FFFF) as usize;
        keys.push(key);
        push_elements(rep, &mut elements);
        let mut last_node = u32::MAX;
        while i < n_fin && (packed[i] >> 64) as u64 == key {
            let node = ((packed[i] >> 32) & 0xFFFF_FFFF) as u32;
            if node != last_node {
                generators.push(node);
                last_node = node;
            }
            i += 1;
        }
        gen_offsets.push(generators.len() as u64);
    }
    ShingleGraph::from_parts(s, keys, elements, gen_offsets, generators)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minwise::pack;

    /// Top-s of a pair list (oracle for merging).
    fn top_s(mut pairs: Vec<PackedHash>, s: usize) -> Vec<PackedHash> {
        pairs.sort_unstable();
        pairs.truncate(s);
        pairs
    }

    #[test]
    fn groups_identical_shingles() {
        let mut raw = RawShingles::new(2);
        // Nodes 3 and 8 generate the same shingle in trial 0.
        raw.push(0, 3, &[pack(1, 10), pack(2, 20)]);
        raw.push(0, 8, &[pack(1, 10), pack(2, 20)]);
        // Node 5 generates something else in trial 1.
        raw.push(1, 5, &[pack(1, 10), pack(2, 20)]);
        let g = aggregate(&raw);
        assert_eq!(g.len(), 2, "same elements in different trials differ");
        let with_two: Vec<_> = g.iter().filter(|(_, _, _, gens)| gens.len() == 2).collect();
        assert_eq!(with_two.len(), 1);
        let (_, _, elements, gens) = with_two[0];
        assert_eq!(elements, &[10, 20]);
        assert_eq!(gens, &[3, 8]);
    }

    #[test]
    fn split_fragments_merge_to_unsplit_result() {
        // A 6-element adjacency list split 4/2 across two batches.
        let full: Vec<PackedHash> = vec![
            pack(50, 1),
            pack(10, 2),
            pack(40, 3),
            pack(30, 4),
            pack(20, 5),
            pack(60, 6),
        ];
        let s = 3;

        let mut unsplit = RawShingles::new(s);
        unsplit.push(0, 7, &top_s(full.clone(), s));

        let mut split = RawShingles::new(s);
        split.push(0, 7, &top_s(full[..4].to_vec(), s));
        split.push(0, 7, &top_s(full[4..].to_vec(), s));

        assert_eq!(aggregate(&unsplit), aggregate(&split));
    }

    #[test]
    fn short_merged_lists_produce_no_shingle() {
        let mut raw = RawShingles::new(3);
        raw.push(0, 1, &[pack(1, 10)]);
        raw.push(0, 1, &[pack(2, 20)]); // merged: 2 < s = 3
        raw.push(0, 2, &[pack(1, 1), pack(2, 2), pack(3, 3)]);
        let g = aggregate(&raw);
        assert_eq!(g.len(), 1);
        assert_eq!(g.generators(0), &[2]);
    }

    #[test]
    fn elements_in_canonical_hash_order() {
        let mut raw = RawShingles::new(2);
        // Element 9 has the smaller hash, so it comes first canonically.
        raw.push(0, 0, &[pack(1, 9), pack(2, 4)]);
        let g = aggregate(&raw);
        assert_eq!(g.elements(0), &[9, 4]);
    }

    #[test]
    fn empty_input_empty_graph() {
        let raw = RawShingles::new(2);
        let g = aggregate(&raw);
        assert!(g.is_empty());
    }

    #[test]
    fn keys_are_sorted_ascending() {
        let mut raw = RawShingles::new(1);
        for node in 0..50u32 {
            raw.push(node % 5, node, &[pack(node, node)]);
        }
        let g = aggregate(&raw);
        let keys: Vec<u64> = (0..g.len()).map(|i| g.key(i)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn parallel_sort_paths_match_serial_semantics() {
        // Large enough to cross PAR_SORT_MIN and exercise the rayon sorts
        // in all three aggregation paths; every path must agree with the
        // others on the same logical records, and be self-consistent
        // across repeated runs.
        let s = 2;
        let n = (PAR_SORT_MIN + 1234) as u32;
        let mut grouped = RawShingles::new(s);
        let mut ungrouped = RawShingles::new(s);
        let mut streaming = StreamAggregator::new(s);
        for i in 0..n {
            let trial = i % 7;
            let e = i % 50;
            let pairs = [pack(e, e), pack(e + 1, e + 1)];
            grouped.push(trial, i, &pairs);
            ungrouped.push(trial, i, &pairs);
            streaming.push(trial, i, &pairs);
        }
        grouped.mark_grouped();
        let via_grouped = aggregate(&grouped);
        let via_ungrouped = aggregate(&ungrouped);
        let via_streaming = streaming.finish();
        assert_eq!(via_grouped, via_ungrouped);
        assert_eq!(via_grouped, via_streaming);
        assert_eq!(via_grouped, aggregate(&grouped), "non-deterministic");
        // 7 trials × 50 element pairs → 350 distinct shingles, each with
        // many generators.
        assert_eq!(via_grouped.len(), 350);
    }

    #[test]
    fn duplicate_pair_at_fragment_boundary_deduped() {
        // The same (hash, element) appearing in both fragments (an exact
        // boundary overlap) must not count twice toward the s threshold.
        let mut raw = RawShingles::new(2);
        raw.push(0, 3, &[pack(5, 50)]);
        raw.push(0, 3, &[pack(5, 50)]);
        let g = aggregate(&raw);
        assert!(g.is_empty(), "one distinct candidate < s = 2");
    }
}
