//! CPU-side shingle aggregation — "compute shingle graph" in Figure 3.
//!
//! Input: the raw `(trial, node, top-s pairs)` records streamed back from
//! the device, batch by batch. This step performs the two CPU duties the
//! paper assigns to the host:
//!
//! 1. **Fragment merging** — when an adjacency list was split between two
//!    job batches, its per-batch top-s candidate lists are merged and the
//!    globally smallest s re-selected ("the CPU has to combine the shingle
//!    results for the split adjacency lists after it receives shingles from
//!    the GPU"). Nodes whose merged candidate count is below s produce no
//!    shingle, matching the ≥ s-links rule.
//! 2. **Inversion/grouping** — "a sorting is done to gather all vertices
//!    that generated each shingle", yielding the `<s_j, L(s_j)>` tuples
//!    that form the bipartite shingle graph for the next pass.

use crate::minwise::{unpack_element, PackedHash};
use crate::shingle::{shingle_key, RawShingles, ShingleKey};
use gpclust_graph::ShingleGraph;
use rayon::prelude::*;

/// Default threshold below which the rayon fork/join overhead outweighs
/// the parallel sort's gain, so host aggregation sorts serially. The
/// packed values are unique (each carries its record index in the low
/// bits), and the one keyed sort only ties on fragments of the same
/// `(node, trial)` — whose merge re-sorts and dedups — so the parallel
/// unstable sorts leave the aggregation deterministic. Configurable per
/// run via [`crate::ShinglingParams::par_sort_min`].
pub use crate::params::PAR_SORT_MIN;

/// `sort_unstable`, parallelized for inputs of at least `par_sort_min`
/// elements (so tests can force either path deterministically).
#[inline]
fn sort_packed(packed: &mut [u128], par_sort_min: usize) {
    if packed.len() >= par_sort_min {
        packed.par_sort_unstable();
    } else {
        packed.sort_unstable();
    }
}

/// Aggregate raw records into the bipartite shingle graph, with the
/// default [`PAR_SORT_MIN`] parallel-sort gate.
pub fn aggregate(raw: &RawShingles) -> ShingleGraph {
    aggregate_with(raw, PAR_SORT_MIN)
}

/// Aggregate raw records into the bipartite shingle graph.
///
/// This is the largest CPU stage of gpClust (it dominates the "CPU" column
/// of Table I), so it works in flat column arrays with exactly two big
/// sorts/scans and no per-record heap allocation.
pub fn aggregate_with(raw: &RawShingles, par_sort_min: usize) -> ShingleGraph {
    let s = raw.s();
    let n_rec = raw.len();

    // Grouped fast path (serial pass, GPU pass after its boundary
    // pre-merge): no merging, no column copies — pack
    // (key, node, record-index) straight from the raw storage and pull
    // element ids back out of it at emission time.
    if raw.is_grouped() {
        assert!(n_rec < (1 << 32), "too many shingle records");
        let mut packed: Vec<u128> = (0..n_rec)
            .map(|i| {
                let pairs = raw.pairs_of(i);
                debug_assert_eq!(pairs.len(), s);
                let key = shingle_key(raw.trial(i), pairs.iter().map(|&p| unpack_element(p)));
                ((key as u128) << 64) | ((raw.node(i) as u128) << 32) | i as u128
            })
            .collect();
        sort_packed(&mut packed, par_sort_min);
        return invert_packed(s, &packed, |rep, out| {
            out.extend(raw.pairs_of(rep).iter().map(|&p| unpack_element(p)));
        });
    }

    // Ungrouped inputs pay one fragment merge-and-pack into a single
    // sorted run, then flow through the same streaming merge/inversion
    // the device-aggregation runs use.
    merge_sorted_runs(s, vec![fragment_run(raw, par_sort_min)])
}

/// Merge fragments of an *ungrouped* record stream (records of the same
/// `(node, trial)` split across batches or devices) into finalized
/// records, packed and host-sorted into one [`SortedRun`].
///
/// This is the CPU fix-up the paper describes for split adjacency lists:
/// per `(node, trial)` group the candidate pairs are merged, deduped and
/// the globally smallest `s` re-selected; groups left with fewer than `s`
/// distinct candidates produce no shingle (the ≥ s-links rule).
pub fn fragment_run(raw: &RawShingles, par_sort_min: usize) -> SortedRun {
    let s = raw.s();
    let n_rec = raw.len();
    let mut fin_keys: Vec<ShingleKey> = Vec::with_capacity(n_rec);
    let mut fin_nodes: Vec<u32> = Vec::with_capacity(n_rec);
    let mut fin_elements: Vec<u32> = Vec::with_capacity(n_rec * s);
    {
        let mut order: Vec<u32> = (0..n_rec as u32).collect();
        let group_key =
            |&i: &u32| ((raw.node(i as usize) as u64) << 32) | raw.trial(i as usize) as u64;
        if order.len() >= par_sort_min {
            order.par_sort_unstable_by_key(group_key);
        } else {
            order.sort_unstable_by_key(group_key);
        }
        let mut merged: Vec<PackedHash> = Vec::with_capacity(2 * s);
        let mut gi = 0usize;
        while gi < order.len() {
            let first = order[gi] as usize;
            let (trial, node) = (raw.trial(first), raw.node(first));
            let mut gj = gi + 1;
            merged.clear();
            merged.extend_from_slice(raw.pairs_of(first));
            while gj < order.len() {
                let next = order[gj] as usize;
                if raw.trial(next) != trial || raw.node(next) != node {
                    break;
                }
                merged.extend_from_slice(raw.pairs_of(next));
                gj += 1;
            }
            if merged.len() >= s {
                merged.sort_unstable();
                merged.dedup(); // a fragment boundary duplicate is harmless but possible
                if merged.len() >= s {
                    merged.truncate(s);
                    fin_nodes.push(node);
                    for &p in &merged {
                        fin_elements.push(unpack_element(p));
                    }
                    fin_keys.push(shingle_key(
                        trial,
                        merged.iter().map(|&p| unpack_element(p)),
                    ));
                }
            }
            gi = gj;
        }
    }

    let n_fin = fin_keys.len();
    assert!(n_fin < (1 << 32), "too many shingle records");
    let mut packed: Vec<u128> = (0..n_fin)
        .map(|i| ((fin_keys[i] as u128) << 64) | ((fin_nodes[i] as u128) << 32) | i as u128)
        .collect();
    sort_packed(&mut packed, par_sort_min);
    SortedRun {
        packed,
        elements: fin_elements,
    }
}

/// One sorted run of aggregation records — the unit the device-side
/// aggregation downloads per batch and the host k-way merge consumes.
///
/// `packed[i]` is `(shingle-key << 64) | (node << 32) | local-index`,
/// ascending; `elements[local-index*s .. (local-index+1)*s]` holds the
/// record's element ids in canonical order (local indices are assigned in
/// emission order *within the run*, so they do not collide across runs —
/// the merge re-ranks them globally).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SortedRun {
    /// Sorted packed `(key, node, local-index)` records.
    pub packed: Vec<u128>,
    /// `s` element ids per record, indexed by the packed local index.
    pub elements: Vec<u32>,
}

impl SortedRun {
    /// Number of records in the run.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// True if the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }
}

/// Merge sorted runs into the bipartite shingle graph in one streaming
/// binary-heap pass — the host side of device aggregation.
///
/// Entries pop in ascending `((key, node), run-index, position)` order.
/// Runs arrive in batch order and their local indices in emission order,
/// so this reproduces, record for record, exactly the sequence the host
/// oracle's global `(key << 64 | node << 32 | record-index)` sort
/// produces — which is what makes `AggregationMode::Device` bit-identical
/// to `Host`. Host work is O(|records| · log |runs|) with no giant sort.
pub fn merge_sorted_runs(s: usize, runs: Vec<SortedRun>) -> ShingleGraph {
    let runs: Vec<SortedRun> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert!(total < (1 << 32), "too many shingle records");
    debug_assert!(runs
        .iter()
        .all(|r| r.packed.windows(2).all(|w| w[0] <= w[1])));
    let mut inv = StreamInverter::new(s, total);

    if let [run] = runs.as_slice() {
        // Degenerate single-run merge (host fragment path, one batch):
        // skip the heap entirely.
        for &p in &run.packed {
            let rep = (p & 0xFFFF_FFFF) as usize;
            inv.push(p, |out| {
                out.extend_from_slice(&run.elements[rep * s..(rep + 1) * s])
            });
        }
        return inv.finish();
    }

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    // Heap keys strip the run-local index (low 32 bits) and tie-break on
    // the run index, restoring the global emission order for records with
    // equal (key, node).
    let mut cursors = vec![0usize; runs.len()];
    let mut heap: BinaryHeap<Reverse<(u128, usize)>> = runs
        .iter()
        .enumerate()
        .map(|(ri, r)| Reverse((r.packed[0] >> 32, ri)))
        .collect();
    while let Some(Reverse((_, ri))) = heap.pop() {
        let run = &runs[ri];
        let p = run.packed[cursors[ri]];
        let rep = (p & 0xFFFF_FFFF) as usize;
        inv.push(p, |out| {
            out.extend_from_slice(&run.elements[rep * s..(rep + 1) * s])
        });
        cursors[ri] += 1;
        if let Some(&next) = run.packed.get(cursors[ri]) {
            heap.push(Reverse((next >> 32, ri)));
        }
    }
    inv.finish()
}

/// Merge sorted runs into one [`SortedRun`], re-ranking local indices
/// globally — the record-level sibling of [`merge_sorted_runs`], for when
/// the merged records must *outlive* the pass (the persistent shingle
/// index) instead of collapsing straight into a graph.
///
/// Records pop in exactly the order [`merge_sorted_runs`] consumes them
/// (ascending `(key, node)`, run-index tie-break), so
/// `merge_sorted_runs(s, vec![merge_runs_to_run(s, runs)])` is
/// bit-identical to `merge_sorted_runs(s, runs)` — which is what lets a
/// delta pass fold fresh records into a stored run and still reproduce
/// the from-scratch aggregation byte for byte.
pub fn merge_runs_to_run(s: usize, runs: Vec<SortedRun>) -> SortedRun {
    let mut runs: Vec<SortedRun> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert!(total < (1 << 32), "too many shingle records");
    debug_assert!(runs
        .iter()
        .all(|r| r.packed.windows(2).all(|w| w[0] <= w[1])));
    if runs.len() == 1 {
        return runs.pop().unwrap();
    }
    let mut out = SortedRun {
        packed: Vec::with_capacity(total),
        elements: Vec::with_capacity(total * s),
    };
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut cursors = vec![0usize; runs.len()];
    let mut heap: BinaryHeap<Reverse<(u128, usize)>> = runs
        .iter()
        .enumerate()
        .map(|(ri, r)| Reverse((r.packed[0] >> 32, ri)))
        .collect();
    while let Some(Reverse((key_node, ri))) = heap.pop() {
        let run = &runs[ri];
        let p = run.packed[cursors[ri]];
        let rep = (p & 0xFFFF_FFFF) as usize;
        let idx = out.packed.len() as u128;
        out.packed.push((key_node << 32) | idx);
        out.elements
            .extend_from_slice(&run.elements[rep * s..(rep + 1) * s]);
        cursors[ri] += 1;
        if let Some(&next) = run.packed.get(cursors[ri]) {
            heap.push(Reverse((next >> 32, ri)));
        }
    }
    out
}

/// Streaming shingle aggregation: records flow in one at a time (from
/// [`crate::serial::shingle_pass_foreach`] or the device pass), are packed
/// immediately into the 128-bit sort representation, and never exist as a
/// separate raw-record container. This nearly halves the peak memory of the
/// dominant aggregation stage relative to materialize-then-aggregate.
///
/// Only *grouped* streams are supported (one record per `(trial, node)`,
/// exactly `s` sorted pairs each) — which both pass implementations
/// guarantee.
#[derive(Debug)]
pub struct StreamAggregator {
    s: usize,
    par_sort_min: usize,
    packed: Vec<u128>,
    elements: Vec<u32>,
}

impl StreamAggregator {
    /// A fresh aggregator for shingle size `s` with the default
    /// [`PAR_SORT_MIN`] parallel-sort gate.
    pub fn new(s: usize) -> Self {
        Self::with_par_sort_min(s, PAR_SORT_MIN)
    }

    /// A fresh aggregator with an explicit parallel-sort threshold
    /// ([`crate::ShinglingParams::par_sort_min`]).
    pub fn with_par_sort_min(s: usize, par_sort_min: usize) -> Self {
        StreamAggregator {
            s,
            par_sort_min,
            packed: Vec::new(),
            elements: Vec::new(),
        }
    }

    /// Number of records absorbed so far.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// True if no records were absorbed.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Absorb one record: `pairs` sorted ascending, exactly `s` of them.
    #[inline]
    pub fn push(&mut self, trial: u32, node: u32, pairs: &[PackedHash]) {
        debug_assert_eq!(pairs.len(), self.s);
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]));
        let idx = (self.elements.len() / self.s) as u128;
        assert!(idx < (1 << 32), "too many shingle records");
        for &p in pairs {
            self.elements.push(unpack_element(p));
        }
        let key = shingle_key(trial, pairs.iter().map(|&p| unpack_element(p)));
        self.packed
            .push(((key as u128) << 64) | ((node as u128) << 32) | idx);
    }

    /// Sort, group and build the bipartite shingle graph.
    pub fn finish(mut self) -> ShingleGraph {
        sort_packed(&mut self.packed, self.par_sort_min);
        let elements = self.elements;
        let s = self.s;
        invert_packed(s, &self.packed, |rep, out| {
            out.extend_from_slice(&elements[rep * s..(rep + 1) * s]);
        })
    }
}

/// Group sorted packed `(key << 64 | node << 32 | record-index)` values
/// into the bipartite shingle graph. `push_elements(rep, out)` appends the
/// `s` element ids of the record with index `rep`.
///
/// "A sorting is done to gather all vertices that generated each shingle" —
/// the caller's 128-bit sort is the dominant CPU cost of the pipeline;
/// the comparisons run fully in-register with no memory indirection.
fn invert_packed(
    s: usize,
    packed: &[u128],
    push_elements: impl Fn(usize, &mut Vec<u32>),
) -> ShingleGraph {
    let mut inv = StreamInverter::new(s, packed.len());
    for &p in packed {
        let rep = (p & 0xFFFF_FFFF) as usize;
        inv.push(p, |out| push_elements(rep, out));
    }
    inv.finish()
}

/// The streaming grouping core shared by [`invert_packed`] (host mode),
/// [`merge_sorted_runs`] (device mode) and the out-of-core external merge
/// ([`crate::spill::merge_external_runs`]): consumes packed records in
/// ascending `(key, node)` order one at a time, opens a shingle per
/// distinct key (filling its elements from the group's first record, the
/// representative) and dedups consecutive generator nodes.
///
/// Every aggregation path building its graph through this one type is
/// what keeps their outputs structurally bit-identical.
pub(crate) struct StreamInverter {
    s: usize,
    keys: Vec<u64>,
    elements: Vec<u32>,
    gen_offsets: Vec<u64>,
    generators: Vec<u32>,
    cur_key: u64,
    last_node: u32,
    open: bool,
}

impl StreamInverter {
    pub(crate) fn new(s: usize, n_records_hint: usize) -> Self {
        StreamInverter {
            s,
            keys: Vec::new(),
            elements: Vec::new(),
            gen_offsets: vec![0],
            generators: Vec::with_capacity(n_records_hint),
            cur_key: 0,
            last_node: u32::MAX,
            open: false,
        }
    }

    /// Absorb the next record (ascending `(key, node)` across calls);
    /// `fill_elements` appends its `s` element ids, invoked only when the
    /// record opens a new key group.
    #[inline]
    pub(crate) fn push(&mut self, packed: u128, fill_elements: impl FnOnce(&mut Vec<u32>)) {
        let key = (packed >> 64) as u64;
        let node = ((packed >> 32) & 0xFFFF_FFFF) as u32;
        if !self.open || key != self.cur_key {
            debug_assert!(
                !self.open || key > self.cur_key,
                "records must arrive sorted"
            );
            if self.open {
                self.gen_offsets.push(self.generators.len() as u64);
            }
            self.keys.push(key);
            fill_elements(&mut self.elements);
            self.cur_key = key;
            self.last_node = u32::MAX;
            self.open = true;
        }
        if node != self.last_node {
            self.generators.push(node);
            self.last_node = node;
        }
    }

    pub(crate) fn finish(mut self) -> ShingleGraph {
        if self.open {
            self.gen_offsets.push(self.generators.len() as u64);
        }
        ShingleGraph::from_parts(
            self.s,
            self.keys,
            self.elements,
            self.gen_offsets,
            self.generators,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minwise::pack;

    /// Top-s of a pair list (oracle for merging).
    fn top_s(mut pairs: Vec<PackedHash>, s: usize) -> Vec<PackedHash> {
        pairs.sort_unstable();
        pairs.truncate(s);
        pairs
    }

    #[test]
    fn groups_identical_shingles() {
        let mut raw = RawShingles::new(2);
        // Nodes 3 and 8 generate the same shingle in trial 0.
        raw.push(0, 3, &[pack(1, 10), pack(2, 20)]);
        raw.push(0, 8, &[pack(1, 10), pack(2, 20)]);
        // Node 5 generates something else in trial 1.
        raw.push(1, 5, &[pack(1, 10), pack(2, 20)]);
        let g = aggregate(&raw);
        assert_eq!(g.len(), 2, "same elements in different trials differ");
        let with_two: Vec<_> = g.iter().filter(|(_, _, _, gens)| gens.len() == 2).collect();
        assert_eq!(with_two.len(), 1);
        let (_, _, elements, gens) = with_two[0];
        assert_eq!(elements, &[10, 20]);
        assert_eq!(gens, &[3, 8]);
    }

    #[test]
    fn split_fragments_merge_to_unsplit_result() {
        // A 6-element adjacency list split 4/2 across two batches.
        let full: Vec<PackedHash> = vec![
            pack(50, 1),
            pack(10, 2),
            pack(40, 3),
            pack(30, 4),
            pack(20, 5),
            pack(60, 6),
        ];
        let s = 3;

        let mut unsplit = RawShingles::new(s);
        unsplit.push(0, 7, &top_s(full.clone(), s));

        let mut split = RawShingles::new(s);
        split.push(0, 7, &top_s(full[..4].to_vec(), s));
        split.push(0, 7, &top_s(full[4..].to_vec(), s));

        assert_eq!(aggregate(&unsplit), aggregate(&split));
    }

    #[test]
    fn short_merged_lists_produce_no_shingle() {
        let mut raw = RawShingles::new(3);
        raw.push(0, 1, &[pack(1, 10)]);
        raw.push(0, 1, &[pack(2, 20)]); // merged: 2 < s = 3
        raw.push(0, 2, &[pack(1, 1), pack(2, 2), pack(3, 3)]);
        let g = aggregate(&raw);
        assert_eq!(g.len(), 1);
        assert_eq!(g.generators(0), &[2]);
    }

    #[test]
    fn elements_in_canonical_hash_order() {
        let mut raw = RawShingles::new(2);
        // Element 9 has the smaller hash, so it comes first canonically.
        raw.push(0, 0, &[pack(1, 9), pack(2, 4)]);
        let g = aggregate(&raw);
        assert_eq!(g.elements(0), &[9, 4]);
    }

    #[test]
    fn empty_input_empty_graph() {
        let raw = RawShingles::new(2);
        let g = aggregate(&raw);
        assert!(g.is_empty());
    }

    #[test]
    fn keys_are_sorted_ascending() {
        let mut raw = RawShingles::new(1);
        for node in 0..50u32 {
            raw.push(node % 5, node, &[pack(node, node)]);
        }
        let g = aggregate(&raw);
        let keys: Vec<u64> = (0..g.len()).map(|i| g.key(i)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn parallel_sort_paths_match_serial_semantics() {
        // Large enough to cross PAR_SORT_MIN and exercise the rayon sorts
        // in all three aggregation paths; every path must agree with the
        // others on the same logical records, and be self-consistent
        // across repeated runs.
        let s = 2;
        let n = (PAR_SORT_MIN + 1234) as u32;
        let mut grouped = RawShingles::new(s);
        let mut ungrouped = RawShingles::new(s);
        let mut streaming = StreamAggregator::new(s);
        for i in 0..n {
            let trial = i % 7;
            let e = i % 50;
            let pairs = [pack(e, e), pack(e + 1, e + 1)];
            grouped.push(trial, i, &pairs);
            ungrouped.push(trial, i, &pairs);
            streaming.push(trial, i, &pairs);
        }
        grouped.mark_grouped();
        let via_grouped = aggregate(&grouped);
        let via_ungrouped = aggregate(&ungrouped);
        let via_streaming = streaming.finish();
        assert_eq!(via_grouped, via_ungrouped);
        assert_eq!(via_grouped, via_streaming);
        assert_eq!(via_grouped, aggregate(&grouped), "non-deterministic");
        // 7 trials × 50 element pairs → 350 distinct shingles, each with
        // many generators.
        assert_eq!(via_grouped.len(), 350);
    }

    /// Pack one grouped record the way a device run does (run-local idx).
    fn push_run_record(run: &mut SortedRun, trial: u32, node: u32, pairs: &[PackedHash]) {
        let s = pairs.len();
        let idx = (run.elements.len() / s) as u128;
        for &p in pairs {
            run.elements.push(unpack_element(p));
        }
        let key = shingle_key(trial, pairs.iter().map(|&p| unpack_element(p)));
        run.packed
            .push(((key as u128) << 64) | ((node as u128) << 32) | idx);
    }

    #[test]
    fn merged_runs_equal_global_sort_oracle() {
        // The same grouped record stream, aggregated (a) through the host
        // oracle's one global sort and (b) split into per-"batch" runs,
        // each sorted locally, then k-way merged — the device-aggregation
        // shape. The graphs must be bit-identical for any split.
        let s = 2;
        for n_runs in [1usize, 2, 3, 7] {
            let mut oracle = StreamAggregator::new(s);
            let mut runs: Vec<SortedRun> = vec![SortedRun::default(); n_runs];
            for i in 0..2_000u32 {
                let trial = i % 5;
                let e = i % 37;
                let pairs = [pack(e, e), pack(e + 1, e + 1)];
                oracle.push(trial, i, &pairs);
                // Split in contiguous chunks, like batches of nodes.
                let run = (i as usize * n_runs) / 2_000;
                push_run_record(&mut runs[run], trial, i, &pairs);
            }
            for run in &mut runs {
                run.packed.sort_unstable();
            }
            assert_eq!(merge_sorted_runs(s, runs), oracle.finish(), "{n_runs} runs");
        }
    }

    #[test]
    fn merge_handles_empty_and_unbalanced_runs() {
        let s = 1;
        let mut oracle = StreamAggregator::new(s);
        let mut big = SortedRun::default();
        let mut small = SortedRun::default();
        for i in 0..100u32 {
            let pairs = [pack(i % 9, i % 9)];
            oracle.push(0, i, &pairs);
            push_run_record(if i < 99 { &mut big } else { &mut small }, 0, i, &pairs);
        }
        big.packed.sort_unstable();
        small.packed.sort_unstable();
        let runs = vec![SortedRun::default(), big, SortedRun::default(), small];
        assert_eq!(merge_sorted_runs(s, runs), oracle.finish());
        assert!(merge_sorted_runs(s, Vec::new()).is_empty());
    }

    #[test]
    fn merge_runs_to_run_commutes_with_graph_merge() {
        // Collapsing runs into one run first, then inverting, must equal
        // inverting the runs directly — for any split, including ties on
        // (key, node) across runs.
        let s = 2;
        for n_runs in [1usize, 2, 3, 5] {
            let mut runs: Vec<SortedRun> = vec![SortedRun::default(); n_runs];
            for i in 0..1_500u32 {
                let trial = i % 4;
                let e = i % 23;
                let pairs = [pack(e, e), pack(e + 1, e + 1)];
                let run = (i as usize * n_runs) / 1_500;
                push_run_record(&mut runs[run], trial, i, &pairs);
            }
            for run in &mut runs {
                run.packed.sort_unstable();
            }
            let direct = merge_sorted_runs(s, runs.clone());
            let merged = merge_runs_to_run(s, runs);
            assert!(merged.packed.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(merge_sorted_runs(s, vec![merged]), direct, "{n_runs} runs");
        }
        assert!(merge_runs_to_run(s, Vec::new()).is_empty());
    }

    #[test]
    fn par_sort_threshold_is_configurable() {
        // Forcing the parallel path (threshold 0) and the serial path
        // (threshold MAX) on the same small input must agree — the knob
        // only moves work between rayon and the current thread.
        let s = 2;
        let mut forced_par = StreamAggregator::with_par_sort_min(s, 0);
        let mut forced_serial = StreamAggregator::with_par_sort_min(s, usize::MAX);
        let mut raw = RawShingles::new(s);
        for i in 0..500u32 {
            let pairs = [pack(i % 11, i % 11), pack(i % 11 + 1, i % 11 + 1)];
            forced_par.push(i % 3, i, &pairs);
            forced_serial.push(i % 3, i, &pairs);
            raw.push(i % 3, i, &pairs);
        }
        let par = forced_par.finish();
        assert_eq!(par, forced_serial.finish());
        assert_eq!(par, aggregate_with(&raw, 0));
        assert_eq!(par, aggregate_with(&raw, usize::MAX));
    }

    #[test]
    fn duplicate_pair_at_fragment_boundary_deduped() {
        // The same (hash, element) appearing in both fragments (an exact
        // boundary overlap) must not count twice toward the s threshold.
        let mut raw = RawShingles::new(2);
        raw.push(0, 3, &[pack(5, 50)]);
        raw.push(0, 3, &[pack(5, 50)]);
        let g = aggregate(&raw);
        assert!(g.is_empty(), "one distinct candidate < s = 2");
    }
}
