//! Durable checkpoint/restore for the out-of-core passes — the process-
//! and storage-fault half of the fault model ([`crate::params::FaultPolicy`]
//! recovers from *device* faults inside a live process; this module makes
//! the work survive the process itself).
//!
//! ## Manifest journal
//!
//! A checkpointed run keeps a `manifest.json` in its checkpoint directory:
//! the input fingerprint (FNV-1a over the offset array — the structure a
//! spilled run is only valid against), the plan axes the run was lowered
//! with, and one *entry group* per sharded pass invocation (keyed by a
//! plan signature over shard capacity and chunk boundaries), each entry
//! recording a completed shard's sealed run files, their checksums, and
//! its fragment-pool segment. Every rewrite is atomic and durable:
//! temp file → `fsync` → `rename` → directory `fsync`, so the manifest on
//! disk is always a complete, parseable journal of *committed* shards.
//!
//! ## Commit points and resume
//!
//! The drivers seal a shard (write + `fsync` its runs and pool segment),
//! then commit its manifest entry — in that order, so a crash between the
//! two leaves orphan files that the re-run simply overwrites. `--resume`
//! re-lowers the same plan, refuses on fingerprint or axes mismatch with
//! a typed [`CheckpointError`], re-verifies every surviving run's framing
//! checksums, and re-executes only shards whose entries are absent or
//! fail verification — bit-identical to an uninterrupted run because the
//! reused runs and pool segments are byte-faithful replicas of what the
//! uninterrupted run would have produced at the same point.
//!
//! ## Crash injection
//!
//! [`CrashPlan`] mirrors the device-fault [`gpclust_gpu::FaultPlan`]:
//! named crash sites (shard-seal / manifest-commit / merge), scheduled or
//! seeded-random kills, driven in-process by an early-return "kill" (a
//! typed host-I/O error carrying [`KILL_MARKER`]) so proptests can
//! restart deterministically where a real `kill -9` cannot be replayed.

use crate::params::{MemoryBudget, ShinglingParams};
use crate::shingle::RawShingles;
use crate::spill::{SpillStats, SpilledRun};
use gpclust_gpu::{splitmix64, DeviceError};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// File name of the manifest journal inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Manifest format version (bumped on incompatible schema changes).
const MANIFEST_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Checksums and fingerprints (hand-rolled: the workspace takes no new deps).
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Incremental IEEE CRC-32 — the per-frame checksum of spilled runs and
/// pool segments. Table-driven, byte-at-a-time; plenty for detecting the
/// truncation and bit-flip corruption this layer guards against.
#[derive(Debug, Clone)]
pub struct Crc32(u32);

impl Crc32 {
    /// A fresh digest.
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The finished checksum (the digest stays usable for further updates).
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// 64-bit FNV-1a over a word sequence (length-prefixed so `[a]` and
/// `[a, 0]` differ) — the manifest's signature primitive.
pub fn signature(parts: &[u64]) -> u64 {
    let mut h = fnv_u64(FNV_OFFSET, parts.len() as u64);
    for &p in parts {
        h = fnv_u64(h, p);
    }
    h
}

/// Fingerprint of a pass input: FNV-1a over its CSR offset array. The
/// offsets pin vertex count, every list boundary, and the element total —
/// the structure that decides which records each shard produces — so a
/// manifest entry is only reusable against an input with the same print.
pub fn fingerprint_offsets(offsets: &[u64]) -> u64 {
    signature(offsets)
}

/// How many targets from each end of the edge array the whole-input
/// fingerprint samples. Bounded so the print stays cheap to recompute
/// even when the target array lives on disk.
pub const FINGERPRINT_SAMPLE: u64 = 1024;

/// Fingerprint of a whole CSR input: the offset array plus a bounded
/// head/tail sample of the target array. Offsets alone pin only the
/// degree structure — two different graphs with the same degree sequence
/// collide — so the manifest-level print also folds in edge identity
/// without ever reading more than `2 × FINGERPRINT_SAMPLE` targets.
pub fn fingerprint_csr(offsets: &[u64], head: &[u32], tail: &[u32]) -> u64 {
    let mut h = fnv_u64(fingerprint_offsets(offsets), head.len() as u64);
    for &t in head.iter().chain(tail) {
        h = fnv_u64(h, t as u64);
    }
    h
}

// ---------------------------------------------------------------------------
// Crash injection
// ---------------------------------------------------------------------------

/// Environment hook installing a crash plan on every checkpointed run
/// (the in-process analogue of `GPCLUST_INJECT_FAULTS`).
pub const CRASH_ENV: &str = "GPCLUST_INJECT_CRASH";

/// Marker substring carried by every injected kill's error detail — how
/// tests (and operators) tell an injected crash from a real I/O failure.
pub const KILL_MARKER: &str = "crash-injected kill";

/// The named boundaries a checkpointed run can be killed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// After a shard's runs and pool segment are sealed (written + synced)
    /// but before its manifest entry commits — resume re-runs the shard,
    /// overwriting the orphan files.
    ShardSeal,
    /// After the shard's manifest entry commits — resume skips the shard.
    ManifestCommit,
    /// After every shard committed, before the external merge — resume
    /// skips all shards and only re-merges.
    Merge,
}

impl CrashSite {
    /// Dense index (occurrence-counter slot).
    pub fn index(self) -> usize {
        match self {
            CrashSite::ShardSeal => 0,
            CrashSite::ManifestCommit => 1,
            CrashSite::Merge => 2,
        }
    }

    /// Stable spec/display name.
    pub fn name(self) -> &'static str {
        match self {
            CrashSite::ShardSeal => "shard-seal",
            CrashSite::ManifestCommit => "manifest-commit",
            CrashSite::Merge => "merge",
        }
    }

    fn parse(tok: &str) -> Option<CrashSite> {
        match tok {
            "shard-seal" | "seal" => Some(CrashSite::ShardSeal),
            "manifest-commit" | "commit" => Some(CrashSite::ManifestCommit),
            "merge" => Some(CrashSite::Merge),
            _ => None,
        }
    }
}

/// A reproducible crash-injection plan — [`gpclust_gpu::FaultPlan`]'s
/// shape applied to process deaths: scheduled kills name a site and the
/// 1-based occurrence to die at; random mode draws a Bernoulli kill per
/// site visit from a seeded [`splitmix64`] stream. A plan kills at most
/// once per run (a process only dies once); the injector re-arms on the
/// next run because each run builds a fresh [`CrashInjector`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrashPlan {
    seed: u64,
    rate: f64,
    schedule: Vec<(CrashSite, u64)>,
}

impl CrashPlan {
    /// A plan that never kills.
    pub fn none() -> CrashPlan {
        CrashPlan::default()
    }

    /// An empty scheduled plan; add kills with [`CrashPlan::with_kill`].
    pub fn scheduled() -> CrashPlan {
        CrashPlan::default()
    }

    /// Seeded random kills at `rate` per site visit.
    pub fn random(seed: u64, rate: f64) -> CrashPlan {
        CrashPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            schedule: Vec::new(),
        }
    }

    /// Also kill at the `occurrence`-th (1-based) visit of `site`.
    pub fn with_kill(mut self, site: CrashSite, occurrence: u64) -> CrashPlan {
        self.schedule.push((site, occurrence.max(1)));
        self
    }

    /// True when the plan can never fire.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty() && self.rate <= 0.0
    }

    /// Parse `"<site>:<occurrence>[,...]"` (site names or the short forms
    /// `seal`/`commit`/`merge`) or the random form `"<seed>:<rate>"`.
    pub fn parse(spec: &str) -> Result<CrashPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(CrashPlan::none());
        }
        if spec.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            let (seed, rate) = spec
                .split_once(':')
                .ok_or_else(|| format!("bad crash spec {spec:?}: want <seed>:<rate>"))?;
            let seed = seed
                .trim()
                .parse::<u64>()
                .map_err(|e| format!("bad crash seed: {e}"))?;
            let rate = rate
                .trim()
                .parse::<f64>()
                .map_err(|e| format!("bad crash rate: {e}"))?;
            return Ok(CrashPlan::random(seed, rate));
        }
        let mut plan = CrashPlan::scheduled();
        for part in spec.split(',') {
            let (site, occ) = part
                .trim()
                .split_once(':')
                .ok_or_else(|| format!("bad crash kill {part:?}: want <site>:<occurrence>"))?;
            let site = CrashSite::parse(site.trim())
                .ok_or_else(|| format!("unknown crash site {site:?}"))?;
            let occ = occ
                .trim()
                .parse::<u64>()
                .map_err(|e| format!("bad crash occurrence: {e}"))?;
            plan = plan.with_kill(site, occ);
        }
        Ok(plan)
    }

    /// The plan [`CRASH_ENV`] requests, if any (malformed specs warn and
    /// are ignored, matching the fault injector's env behavior).
    pub fn from_env() -> Option<CrashPlan> {
        let spec = std::env::var(CRASH_ENV).ok()?;
        match CrashPlan::parse(&spec) {
            Ok(p) if !p.is_empty() => Some(p),
            Ok(_) => None,
            Err(e) => {
                eprintln!("ignoring {CRASH_ENV}: {e}");
                None
            }
        }
    }
}

/// Per-run crash state: site visit counters plus the fired-once latch.
#[derive(Debug)]
pub struct CrashInjector {
    plan: CrashPlan,
    hits: [AtomicU64; 3],
    fired: AtomicBool,
}

impl CrashInjector {
    /// Arm `plan` for one run.
    pub fn new(plan: CrashPlan) -> CrashInjector {
        CrashInjector {
            plan,
            hits: Default::default(),
            fired: AtomicBool::new(false),
        }
    }

    /// Visit `site`: returns the injected kill (a typed host-I/O error
    /// carrying [`KILL_MARKER`]) when the plan says this process dies
    /// here, `Ok` otherwise. The early return unwinds the driver exactly
    /// like a power cut after the last completed `fsync` — everything
    /// sealed is durable, everything else is lost.
    pub fn strike(&self, site: CrashSite) -> Result<(), DeviceError> {
        let hit = self.hits[site.index()].fetch_add(1, Ordering::SeqCst) + 1;
        let scheduled = self
            .plan
            .schedule
            .iter()
            .any(|&(s, occ)| s == site && occ == hit);
        let random = self.plan.rate > 0.0 && {
            let mut state = self
                .plan
                .seed
                .wrapping_add(((site.index() as u64) << 32) | hit);
            let draw = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            draw < self.plan.rate
        };
        if (scheduled || random) && !self.fired.swap(true, Ordering::SeqCst) {
            return Err(DeviceError::HostIo {
                detail: format!("{KILL_MARKER} at {} (occurrence {hit})", site.name()),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failures of the checkpoint layer — what `--resume` refuses with.
#[derive(Debug)]
pub enum CheckpointError {
    /// `--resume` was asked for but no manifest exists.
    Missing {
        /// The manifest path that was not found.
        path: PathBuf,
    },
    /// The manifest exists but does not parse as a valid journal.
    Corrupt {
        /// The offending manifest path.
        path: PathBuf,
        /// What failed to parse.
        detail: String,
    },
    /// The manifest was written for a different input graph.
    FingerprintMismatch {
        /// Fingerprint recorded in the manifest.
        manifest: u64,
        /// Fingerprint of the input now being clustered.
        current: u64,
    },
    /// The manifest was written under different plan axes.
    AxesMismatch {
        /// Which axis disagrees.
        axis: String,
        /// The manifest's recorded value.
        manifest: String,
        /// The current run's value.
        current: String,
    },
    /// An underlying filesystem failure.
    Io(io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Missing { path } => {
                write!(f, "nothing to resume: no manifest at {}", path.display())
            }
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "corrupt manifest {}: {detail}", path.display())
            }
            CheckpointError::FingerprintMismatch { manifest, current } => write!(
                f,
                "input fingerprint mismatch: manifest was written for input \
                 {manifest:#018x}, current input is {current:#018x} — refusing to resume"
            ),
            CheckpointError::AxesMismatch {
                axis,
                manifest,
                current,
            } => write!(
                f,
                "plan axes mismatch on {axis:?}: manifest recorded {manifest}, \
                 current run uses {current} — refusing to resume"
            ),
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Surface a checkpoint failure through the drivers' device-error channel.
pub(crate) fn to_device(e: impl fmt::Display) -> DeviceError {
    DeviceError::HostIo {
        detail: format!("checkpoint: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Configuration and manifest model
// ---------------------------------------------------------------------------

/// How a driver checkpoints: where the manifest and sealed runs live,
/// whether to resume from an existing manifest, and the crash plan to arm
/// (tests; [`CrashPlan::none`] in production).
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding `manifest.json` and the sealed run/pool files.
    pub dir: PathBuf,
    /// Resume from the existing manifest (refusing on fingerprint/axes
    /// mismatch) instead of starting a fresh journal.
    pub resume: bool,
    /// Crash-injection plan for this run.
    pub crash: CrashPlan,
}

impl CheckpointConfig {
    /// Checkpoint into `dir`, fresh journal, no crash injection.
    pub fn new<P: Into<PathBuf>>(dir: P) -> CheckpointConfig {
        CheckpointConfig {
            dir: dir.into(),
            resume: false,
            crash: CrashPlan::none(),
        }
    }

    /// Same directory, resuming.
    pub fn resuming(mut self) -> CheckpointConfig {
        self.resume = true;
        self
    }

    /// Arm `plan` for this run.
    pub fn with_crash(mut self, plan: CrashPlan) -> CheckpointConfig {
        self.crash = plan;
        self
    }
}

/// Manifest record of one sealed spilled run.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// File name inside the checkpoint directory.
    pub file: String,
    /// Record count.
    pub records: u64,
    /// Shingle size the records carry.
    pub s: u64,
    /// CRC-32 over the run's payload bytes.
    pub crc: u32,
}

impl RunMeta {
    /// Meta of a just-sealed `run` stored as `file`.
    pub fn of(file: String, run: &SpilledRun) -> RunMeta {
        RunMeta {
            file,
            records: run.len() as u64,
            s: run.s() as u64,
            crc: run.crc(),
        }
    }
}

/// Manifest record of one shard's fragment-pool segment.
#[derive(Debug, Clone)]
pub struct PoolMeta {
    /// File name inside the checkpoint directory.
    pub file: String,
    /// Record count.
    pub records: u64,
    /// CRC-32 over the segment's payload bytes.
    pub crc: u32,
}

#[derive(Debug, Clone)]
struct ManifestEntry {
    key: u64,
    input_fp: u64,
    runs: Vec<RunMeta>,
    pool: Option<PoolMeta>,
}

#[derive(Debug, Clone)]
struct ManifestGroup {
    sig: u64,
    entries: Vec<ManifestEntry>,
}

/// A verified, reusable shard reloaded from the checkpoint directory.
#[derive(Debug)]
pub struct ReusedEntry {
    /// The shard's sealed runs, reopened and checksum-verified.
    pub runs: Vec<SpilledRun>,
    /// The shard's fragment-pool contribution, in original record order.
    pub pool: RawShingles,
}

/// Outcome of asking the journal for a completed shard.
#[derive(Debug)]
pub enum Reuse {
    /// The entry exists and every file verified clean.
    Hit(ReusedEntry),
    /// The entry exists but a file is corrupt, truncated, or mismatched —
    /// detected, dropped, and the shard re-executes.
    Invalid,
    /// No entry: the shard never committed.
    Miss,
}

/// The plan axes a manifest pins — compared key-by-key on `--resume`.
/// Capacity-derived quantities are deliberately *not* here: they live in
/// the per-invocation group signature, where a mismatch means "no
/// reusable entries", not "refuse the resume" (an OOM backoff mid-run
/// must not strand an otherwise valid checkpoint).
pub fn axes_record(
    p: &ShinglingParams,
    budget: MemoryBudget,
    n_devices: usize,
) -> BTreeMap<String, String> {
    let mut m = BTreeMap::new();
    m.insert("kernel".into(), format!("{:?}", p.kernel));
    m.insert("mode".into(), format!("{:?}", p.mode));
    m.insert("aggregation".into(), format!("{:?}", p.aggregation));
    m.insert("components".into(), format!("{:?}", p.components));
    m.insert("s1".into(), p.s1.to_string());
    m.insert("c1".into(), p.c1.to_string());
    m.insert("s2".into(), p.s2.to_string());
    m.insert("c2".into(), p.c2.to_string());
    m.insert("seed".into(), p.seed.to_string());
    m.insert("par_sort_min".into(), p.par_sort_min.to_string());
    m.insert(
        "budget_bytes".into(),
        budget.bytes.map_or("none".into(), |b| b.to_string()),
    );
    m.insert(
        "budget_shards".into(),
        budget.shards.map_or("none".into(), |s| s.to_string()),
    );
    m.insert("n_devices".into(), n_devices.to_string());
    m
}

// ---------------------------------------------------------------------------
// The checkpointer
// ---------------------------------------------------------------------------

/// The durable run journal: owns the manifest, names the sealed files,
/// verifies and hands back completed shards on resume, and commits new
/// entries atomically.
#[derive(Debug)]
pub struct Checkpointer {
    dir: PathBuf,
    fingerprint: u64,
    axes: BTreeMap<String, String>,
    /// Groups begun this process — what [`Checkpointer::persist`] writes.
    groups: Vec<ManifestGroup>,
    /// Groups loaded from a resumed manifest, awaiting [`begin_group`].
    ///
    /// [`begin_group`]: Checkpointer::begin_group
    loaded: Vec<ManifestGroup>,
    /// Reusable entries of the active group, keyed by shard key.
    reusable: HashMap<u64, ManifestEntry>,
    active: Option<usize>,
}

impl Checkpointer {
    /// Open (or create) the journal in `cfg.dir` for an input with
    /// `fingerprint` under `axes`. Fresh mode wipes any stale manifest
    /// and sealed files and writes an empty journal (so a crash before
    /// the first commit still resumes cleanly); resume mode loads the
    /// manifest and refuses on fingerprint or axes mismatch.
    pub fn open(
        cfg: &CheckpointConfig,
        fingerprint: u64,
        axes: &BTreeMap<String, String>,
    ) -> Result<Checkpointer, CheckpointError> {
        fs::create_dir_all(&cfg.dir)?;
        let path = cfg.dir.join(MANIFEST_FILE);
        if cfg.resume {
            let text = fs::read_to_string(&path).map_err(|e| {
                if e.kind() == io::ErrorKind::NotFound {
                    CheckpointError::Missing { path: path.clone() }
                } else {
                    CheckpointError::Io(e)
                }
            })?;
            let loaded = parse_manifest(&text).map_err(|detail| CheckpointError::Corrupt {
                path: path.clone(),
                detail,
            })?;
            if loaded.fingerprint != fingerprint {
                return Err(CheckpointError::FingerprintMismatch {
                    manifest: loaded.fingerprint,
                    current: fingerprint,
                });
            }
            for (axis, current) in axes {
                match loaded.axes.get(axis) {
                    Some(recorded) if recorded == current => {}
                    recorded => {
                        return Err(CheckpointError::AxesMismatch {
                            axis: axis.clone(),
                            manifest: recorded.cloned().unwrap_or_else(|| "<absent>".into()),
                            current: current.clone(),
                        })
                    }
                }
            }
            Ok(Checkpointer {
                dir: cfg.dir.clone(),
                fingerprint,
                axes: axes.clone(),
                groups: Vec::new(),
                loaded: loaded.groups,
                reusable: HashMap::new(),
                active: None,
            })
        } else {
            sweep_sealed_files(&cfg.dir)?;
            let ck = Checkpointer {
                dir: cfg.dir.clone(),
                fingerprint,
                axes: axes.clone(),
                groups: Vec::new(),
                loaded: Vec::new(),
                reusable: HashMap::new(),
                active: None,
            };
            ck.persist()?;
            Ok(ck)
        }
    }

    /// The input fingerprint the journal was opened with.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Start (or re-enter) the entry group for one sharded pass
    /// invocation. A loaded group with the same `sig` donates its entries
    /// for reuse; a sig never seen before starts empty — entries from
    /// other signatures are simply not reusable (their shard carving
    /// differs), never grounds for refusing the run.
    pub fn begin_group(&mut self, sig: u64) {
        self.reusable.clear();
        if let Some(i) = self.groups.iter().position(|g| g.sig == sig) {
            // Re-entered within this process (an OOM backoff replaying the
            // pass at an unchanged shard capacity): this attempt's own
            // commits become reusable, pending re-verification.
            for e in std::mem::take(&mut self.groups[i].entries) {
                self.reusable.insert(e.key, e);
            }
            self.active = Some(i);
            return;
        }
        if let Some(i) = self.loaded.iter().position(|g| g.sig == sig) {
            for e in self.loaded.swap_remove(i).entries {
                self.reusable.insert(e.key, e);
            }
        }
        self.groups.push(ManifestGroup {
            sig,
            entries: Vec::new(),
        });
        self.active = Some(self.groups.len() - 1);
    }

    fn active_sig(&self) -> u64 {
        self.groups[self.active.expect("begin_group before naming files")].sig
    }

    /// File name of sealed run `k` of shard `key` in the active group.
    pub fn run_file(&self, key: u64, k: usize) -> String {
        format!("g{:016x}-e{key}-r{k}.run", self.active_sig())
    }

    /// Path of sealed run `k` of shard `key` in the active group.
    pub fn run_path(&self, key: u64, k: usize) -> PathBuf {
        self.dir.join(self.run_file(key, k))
    }

    /// File name of shard `key`'s pool segment in the active group.
    pub fn pool_file(&self, key: u64) -> String {
        format!("g{:016x}-e{key}.pool", self.active_sig())
    }

    /// Path of shard `key`'s pool segment in the active group.
    pub fn pool_path(&self, key: u64) -> PathBuf {
        self.dir.join(self.pool_file(key))
    }

    /// Ask the journal for shard `key` of an input with `input_fp`,
    /// re-verifying every surviving file's checksums (`s` is the shingle
    /// size the records must carry). A [`Reuse::Hit`] moves the entry
    /// into the active group so later commits keep it in the journal.
    pub fn take_entry(&mut self, key: u64, input_fp: u64, s: usize) -> Reuse {
        let Some(entry) = self.reusable.remove(&key) else {
            return Reuse::Miss;
        };
        if entry.input_fp != input_fp {
            return Reuse::Invalid;
        }
        let mut runs = Vec::with_capacity(entry.runs.len());
        for rm in &entry.runs {
            if rm.s as usize != s {
                return Reuse::Invalid;
            }
            match SpilledRun::reopen(self.dir.join(&rm.file)) {
                Ok(run) if run.len() as u64 == rm.records && run.crc() == rm.crc => runs.push(run),
                _ => return Reuse::Invalid,
            }
        }
        let mut pool = RawShingles::new(s);
        if let Some(pm) = &entry.pool {
            if read_pool(&self.dir.join(&pm.file), pm.records, pm.crc, &mut pool).is_err() {
                return Reuse::Invalid;
            }
        }
        let gi = self.active.expect("begin_group before take_entry");
        self.groups[gi].entries.push(entry);
        Reuse::Hit(ReusedEntry { runs, pool })
    }

    /// Commit shard `key`: append its entry and atomically persist the
    /// journal. The caller must have sealed (written + synced) every file
    /// the entry names *before* committing — the crash contract is that a
    /// committed entry's files are always durable.
    pub fn commit_entry(
        &mut self,
        key: u64,
        input_fp: u64,
        runs: Vec<RunMeta>,
        pool: Option<PoolMeta>,
    ) -> io::Result<()> {
        let gi = self.active.expect("begin_group before commit_entry");
        self.groups[gi].entries.push(ManifestEntry {
            key,
            input_fp,
            runs,
            pool,
        });
        self.persist()
    }

    /// Atomically rewrite the manifest: temp file, `fsync`, rename over
    /// [`MANIFEST_FILE`], `fsync` the directory.
    fn persist(&self) -> io::Result<()> {
        let tmp = self.dir.join("manifest.json.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(MANIFEST_FILE))?;
        #[cfg(unix)]
        File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    /// The run completed: remove the manifest and every sealed file (the
    /// checkpoint directory is left empty, ready for the next run).
    pub fn finalize(self) -> io::Result<()> {
        let _ = fs::remove_file(self.dir.join("manifest.json.tmp"));
        fs::remove_file(self.dir.join(MANIFEST_FILE))?;
        sweep_sealed_files(&self.dir)
    }

    fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {MANIFEST_VERSION},\n"));
        out.push_str(&format!("  \"fingerprint\": {},\n", self.fingerprint));
        out.push_str("  \"axes\": {");
        for (i, (k, v)) in self.axes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\": \"{}\"", esc(k), esc(v)));
        }
        out.push_str("},\n  \"groups\": [");
        for (gi, g) in self.groups.iter().enumerate() {
            if gi > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {{\"sig\": {}, \"entries\": [", g.sig));
            for (ei, e) in g.entries.iter().enumerate() {
                if ei > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"key\": {}, \"input_fp\": {}, \"runs\": [",
                    e.key, e.input_fp
                ));
                for (ri, r) in e.runs.iter().enumerate() {
                    if ri > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"file\": \"{}\", \"records\": {}, \"s\": {}, \"crc\": {}}}",
                        esc(&r.file),
                        r.records,
                        r.s,
                        r.crc
                    ));
                }
                out.push(']');
                if let Some(p) = &e.pool {
                    out.push_str(&format!(
                        ", \"pool\": {{\"file\": \"{}\", \"records\": {}, \"crc\": {}}}",
                        esc(&p.file),
                        p.records,
                        p.crc
                    ));
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Remove every sealed run/pool file in `dir` (not the manifest).
fn sweep_sealed_files(dir: &Path) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".run") || name.ends_with(".pool") {
            fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Pool segments: a shard's fragment-pool contribution, made durable.
// ---------------------------------------------------------------------------

const POOL_MAGIC: &[u8; 8] = b"GPCLPOL1";
const POOL_HEADER: usize = 32;

/// Seal `raw`'s records from index `start` on into `path` — the shard's
/// fragment-pool delta, in emission order (resume must append it to the
/// global pool exactly where the uninterrupted run would have). Returns
/// `(records, payload crc)`; traffic tallies into `stats`. The file is
/// synced before returning, per the seal-before-commit contract.
pub fn write_pool(
    path: &Path,
    raw: &RawShingles,
    start: usize,
    stats: &mut SpillStats,
) -> io::Result<(u64, u32)> {
    let t0 = Instant::now();
    let records = (raw.len() - start) as u64;
    let mut payload = Vec::new();
    for i in start..raw.len() {
        let (trial, node, pairs) = raw.record(i);
        payload.extend_from_slice(&trial.to_le_bytes());
        payload.extend_from_slice(&node.to_le_bytes());
        payload.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for &p in pairs {
            payload.extend_from_slice(&p.to_le_bytes());
        }
    }
    let crc = crc32(&payload);
    let mut header = [0u8; POOL_HEADER];
    header[..8].copy_from_slice(POOL_MAGIC);
    header[8..16].copy_from_slice(&records.to_le_bytes());
    header[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[24..28].copy_from_slice(&crc.to_le_bytes());
    let mut f = File::create(path)?;
    f.write_all(&header)?;
    f.write_all(&payload)?;
    f.sync_all()?;
    stats.bytes += (POOL_HEADER + payload.len()) as u64;
    stats.write_seconds += t0.elapsed().as_secs_f64();
    Ok((records, crc))
}

fn pool_corrupt(path: &Path, offset: u64, detail: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "pool segment {} corrupt at byte {offset}: {detail}",
            path.display()
        ),
    )
}

/// Reload a pool segment into `into`, verifying the length framing, the
/// payload CRC, and the record count against the manifest's expectation —
/// truncation and bit flips are detected, never silently appended.
pub fn read_pool(
    path: &Path,
    expected_records: u64,
    expected_crc: u32,
    into: &mut RawShingles,
) -> io::Result<()> {
    let mut f = File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    if bytes.len() < POOL_HEADER {
        return Err(pool_corrupt(path, bytes.len() as u64, "truncated header"));
    }
    if &bytes[..8] != POOL_MAGIC {
        return Err(pool_corrupt(path, 0, "bad magic"));
    }
    let records = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    if records != expected_records || crc != expected_crc {
        return Err(pool_corrupt(path, 8, "header disagrees with manifest"));
    }
    if bytes.len() != POOL_HEADER + payload_len {
        return Err(pool_corrupt(
            path,
            bytes.len() as u64,
            "payload length mismatch",
        ));
    }
    let payload = &bytes[POOL_HEADER..];
    if crc32(payload) != crc {
        return Err(pool_corrupt(
            path,
            POOL_HEADER as u64,
            "payload CRC mismatch",
        ));
    }
    let mut pos = 0usize;
    let mut pairs: Vec<u64> = Vec::new();
    for _ in 0..records {
        if payload.len() - pos < 12 {
            return Err(pool_corrupt(
                path,
                (POOL_HEADER + pos) as u64,
                "truncated record",
            ));
        }
        let trial = u32::from_le_bytes(payload[pos..pos + 4].try_into().unwrap());
        let node = u32::from_le_bytes(payload[pos + 4..pos + 8].try_into().unwrap());
        let n_pairs = u32::from_le_bytes(payload[pos + 8..pos + 12].try_into().unwrap()) as usize;
        pos += 12;
        if n_pairs > into.s() || payload.len() - pos < n_pairs * 8 {
            return Err(pool_corrupt(
                path,
                (POOL_HEADER + pos) as u64,
                "bad pair count",
            ));
        }
        pairs.clear();
        for p in payload[pos..pos + n_pairs * 8].chunks_exact(8) {
            pairs.push(u64::from_le_bytes(p.try_into().unwrap()));
        }
        pos += n_pairs * 8;
        into.push(trial, node, &pairs);
    }
    if pos != payload.len() {
        return Err(pool_corrupt(
            path,
            (POOL_HEADER + pos) as u64,
            "trailing bytes after last record",
        ));
    }
    Ok(())
}

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON (the workspace's serde_json is a dev-dependency stub, and
// the manifest must parse in production builds with no new dependencies).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    pub(crate) fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    pub(crate) fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    pub(crate) fn get(&self, key: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(kv) => kv
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key {key:?}")),
            other => Err(format!("expected object with {key:?}, got {other:?}")),
        }
    }

    pub(crate) fn get_opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

pub(crate) struct Parser<'a> {
    pub(crate) b: &'a [u8],
    pub(crate) i: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "byte {}: expected {:?}, got {:?}",
                self.i,
                c as char,
                self.b.get(self.i).map(|&b| b as char)
            ))
        }
    }

    pub(crate) fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "byte {}: unexpected {:?}",
                self.i,
                other.map(|&b| b as char)
            )),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("byte {start}: bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("byte {}: bad \\u escape", self.i))?;
                            out.push(hex);
                            self.i += 4;
                        }
                        other => {
                            return Err(format!(
                                "byte {}: bad escape {:?}",
                                self.i,
                                other.map(|&b| b as char)
                            ))
                        }
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through byte-wise.
                    out.push(c as char);
                    self.i += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                other => {
                    return Err(format!(
                        "byte {}: expected ',' or ']', got {:?}",
                        self.i,
                        other.map(|&b| b as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            out.push((key, val));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                other => {
                    return Err(format!(
                        "byte {}: expected ',' or '}}', got {:?}",
                        self.i,
                        other.map(|&b| b as char)
                    ))
                }
            }
        }
    }
}

struct LoadedManifest {
    fingerprint: u64,
    axes: BTreeMap<String, String>,
    groups: Vec<ManifestGroup>,
}

fn parse_manifest(text: &str) -> Result<LoadedManifest, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let root = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("byte {}: trailing content", p.i));
    }
    let version = root.get("version")?.as_u64()?;
    if version != MANIFEST_VERSION {
        return Err(format!("unsupported manifest version {version}"));
    }
    let fingerprint = root.get("fingerprint")?.as_u64()?;
    let mut axes = BTreeMap::new();
    if let Json::Obj(kv) = root.get("axes")? {
        for (k, v) in kv {
            axes.insert(k.clone(), v.as_str()?.to_string());
        }
    } else {
        return Err("axes must be an object".into());
    }
    let mut groups = Vec::new();
    for g in root.get("groups")?.as_arr()? {
        let sig = g.get("sig")?.as_u64()?;
        let mut entries = Vec::new();
        for e in g.get("entries")?.as_arr()? {
            let mut runs = Vec::new();
            for r in e.get("runs")?.as_arr()? {
                runs.push(RunMeta {
                    file: r.get("file")?.as_str()?.to_string(),
                    records: r.get("records")?.as_u64()?,
                    s: r.get("s")?.as_u64()?,
                    crc: r.get("crc")?.as_u64()? as u32,
                });
            }
            let pool = match e.get_opt("pool") {
                Some(pm) => Some(PoolMeta {
                    file: pm.get("file")?.as_str()?.to_string(),
                    records: pm.get("records")?.as_u64()?,
                    crc: pm.get("crc")?.as_u64()? as u32,
                }),
                None => None,
            };
            entries.push(ManifestEntry {
                key: e.get("key")?.as_u64()?,
                input_fp: e.get("input_fp")?.as_u64()?,
                runs,
                pool,
            });
        }
        groups.push(ManifestGroup { sig, entries });
    }
    Ok(LoadedManifest {
        fingerprint,
        axes,
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::SortedRun;
    use crate::minwise::pack;

    #[test]
    fn crc32_matches_the_reference_check_value() {
        // The canonical IEEE CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        let mut inc = Crc32::new();
        inc.update(b"1234");
        inc.update(b"56789");
        assert_eq!(inc.finish(), 0xCBF4_3926);
    }

    #[test]
    fn fingerprints_separate_structure() {
        let a = fingerprint_offsets(&[0, 2, 5]);
        assert_eq!(a, fingerprint_offsets(&[0, 2, 5]));
        assert_ne!(a, fingerprint_offsets(&[0, 2, 6]));
        assert_ne!(a, fingerprint_offsets(&[0, 2, 5, 5]));
        // Same degree structure, different edges: the sampled whole-CSR
        // print must separate what the offsets-only print cannot.
        let off = [0u64, 2, 4];
        let x = fingerprint_csr(&off, &[1, 0], &[1, 0]);
        assert_eq!(x, fingerprint_csr(&off, &[1, 0], &[1, 0]));
        assert_ne!(x, fingerprint_csr(&off, &[2, 0], &[2, 0]));
        assert_ne!(x, fingerprint_csr(&off, &[1, 0], &[1, 2]));
        assert_ne!(signature(&[1, 2]), signature(&[1, 2, 0]));
    }

    #[test]
    fn crash_plan_parses_both_forms() {
        let p = CrashPlan::parse("seal:2, merge:1").unwrap();
        assert_eq!(
            p.schedule,
            vec![(CrashSite::ShardSeal, 2), (CrashSite::Merge, 1)]
        );
        let p = CrashPlan::parse("7:0.25").unwrap();
        assert_eq!(p.seed, 7);
        assert!((p.rate - 0.25).abs() < 1e-12);
        assert!(CrashPlan::parse("bogus-site:1").is_err());
        assert!(CrashPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn injector_kills_once_at_the_scheduled_occurrence() {
        let inj =
            CrashInjector::new(CrashPlan::scheduled().with_kill(CrashSite::ManifestCommit, 2));
        assert!(inj.strike(CrashSite::ShardSeal).is_ok());
        assert!(inj.strike(CrashSite::ManifestCommit).is_ok());
        let err = inj.strike(CrashSite::ManifestCommit).unwrap_err();
        assert!(err.to_string().contains(KILL_MARKER), "{err}");
        assert!(err.to_string().contains("manifest-commit"), "{err}");
        // A process dies once; the latch holds even at later occurrences.
        let relisted = CrashPlan::scheduled()
            .with_kill(CrashSite::Merge, 1)
            .with_kill(CrashSite::Merge, 2);
        let inj = CrashInjector::new(relisted);
        assert!(inj.strike(CrashSite::Merge).is_err());
        assert!(inj.strike(CrashSite::Merge).is_ok());
    }

    #[test]
    fn random_crashes_replay_from_the_seed() {
        let run = |seed| {
            let inj = CrashInjector::new(CrashPlan::random(seed, 0.5));
            (0..20)
                .map(|_| inj.strike(CrashSite::ShardSeal).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        // At most one kill per run.
        assert!(run(3).iter().filter(|&&k| k).count() <= 1);
    }

    fn sample_run(n: u32) -> SortedRun {
        let mut run = SortedRun::default();
        for i in 0..n {
            let idx = run.packed.len() as u128;
            run.elements.push(i % 7);
            run.elements.push(i % 11);
            run.packed
                .push(((i as u128) << 64) | ((i as u128) << 32) | idx);
        }
        run
    }

    fn axes() -> BTreeMap<String, String> {
        axes_record(
            &crate::params::ShinglingParams::light(3),
            MemoryBudget {
                bytes: Some(1 << 16),
                shards: None,
            },
            1,
        )
    }

    fn test_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("gpclust-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn manifest_roundtrips_through_commit_and_resume() {
        let dir = test_dir("roundtrip");
        let cfg = CheckpointConfig::new(&dir);
        let mut stats = SpillStats::default();
        let fp = fingerprint_offsets(&[0, 3, 6]);

        let mut ck = Checkpointer::open(&cfg, fp, &axes()).unwrap();
        ck.begin_group(42);
        let run = sample_run(100);
        let sealed = SpilledRun::write_at(ck.run_path(0, 0), 2, &run, &mut stats, true).unwrap();
        let mut pool = RawShingles::new(2);
        pool.push(1, 5, &[pack(9, 9), pack(3, 3)]);
        pool.push(2, 5, &[pack(1, 1)]);
        let (recs, crc) = write_pool(&ck.pool_path(0), &pool, 0, &mut stats).unwrap();
        ck.commit_entry(
            0,
            fp,
            vec![RunMeta::of(ck.run_file(0, 0), &sealed)],
            Some(PoolMeta {
                file: ck.pool_file(0),
                records: recs,
                crc,
            }),
        )
        .unwrap();
        drop(sealed); // keep = true: the sealed file must survive the drop
        assert!(dir.join("g000000000000002a-e0-r0.run").exists());

        let mut ck = Checkpointer::open(&cfg.clone().resuming(), fp, &axes()).unwrap();
        ck.begin_group(42);
        match ck.take_entry(0, fp, 2) {
            Reuse::Hit(e) => {
                assert_eq!(e.runs.len(), 1);
                assert_eq!(e.runs[0].len(), 100);
                assert_eq!(e.pool.len(), 2);
                assert_eq!(e.pool.record(0), (1, 5, &[pack(9, 9), pack(3, 3)][..]));
            }
            other => panic!("expected reuse, got {other:?}"),
        }
        assert!(matches!(ck.take_entry(1, fp, 2), Reuse::Miss));
        ck.finalize().unwrap();
        assert!(!dir.join(MANIFEST_FILE).exists());
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_mismatches_with_typed_errors() {
        let dir = test_dir("mismatch");
        let cfg = CheckpointConfig::new(&dir);
        let fp = fingerprint_offsets(&[0, 4]);
        Checkpointer::open(&cfg, fp, &axes()).unwrap();

        let err = Checkpointer::open(&cfg.clone().resuming(), fp ^ 1, &axes()).unwrap_err();
        assert!(
            matches!(err, CheckpointError::FingerprintMismatch { .. }),
            "{err}"
        );

        let mut other = axes();
        other.insert("seed".into(), "999".into());
        let err = Checkpointer::open(&cfg.clone().resuming(), fp, &other).unwrap_err();
        match &err {
            CheckpointError::AxesMismatch { axis, .. } => assert_eq!(axis, "seed"),
            other => panic!("expected axes mismatch, got {other:?}"),
        }

        fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let err = Checkpointer::open(&cfg.clone().resuming(), fp, &axes()).unwrap_err();
        assert!(matches!(err, CheckpointError::Missing { .. }), "{err}");

        fs::write(dir.join(MANIFEST_FILE), "{not json").unwrap();
        let err = Checkpointer::open(&cfg.resuming(), fp, &axes()).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_sealed_files_invalidate_the_entry() {
        let dir = test_dir("corrupt");
        let cfg = CheckpointConfig::new(&dir);
        let mut stats = SpillStats::default();
        let fp = 77;
        let mut ck = Checkpointer::open(&cfg, fp, &axes()).unwrap();
        ck.begin_group(1);
        let run = sample_run(50);
        let sealed = SpilledRun::write_at(ck.run_path(0, 0), 2, &run, &mut stats, true).unwrap();
        let path = ck.run_path(0, 0);
        ck.commit_entry(0, fp, vec![RunMeta::of(ck.run_file(0, 0), &sealed)], None)
            .unwrap();
        drop(sealed);

        // Flip one payload byte: the reopen's CRC check must reject it.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let mut ck = Checkpointer::open(&cfg.clone().resuming(), fp, &axes()).unwrap();
        ck.begin_group(1);
        assert!(matches!(ck.take_entry(0, fp, 2), Reuse::Invalid));

        // Truncation is detected too.
        bytes.truncate(bytes.len() / 2);
        fs::write(&path, &bytes).unwrap();
        let mut ck = Checkpointer::open(&cfg.resuming(), fp, &axes()).unwrap();
        ck.begin_group(1);
        assert!(matches!(ck.take_entry(0, fp, 2), Reuse::Invalid));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_segment_detects_corruption_and_truncation() {
        let dir = test_dir("pool");
        let mut stats = SpillStats::default();
        let mut pool = RawShingles::new(2);
        for i in 0..10u32 {
            pool.push(i, i * 2, &[pack(i, i), pack(i + 1, i + 1)]);
        }
        let path = dir.join("x.pool");
        let (recs, crc) = write_pool(&path, &pool, 3, &mut stats).unwrap();
        assert_eq!(recs, 7);
        let mut back = RawShingles::new(2);
        read_pool(&path, recs, crc, &mut back).unwrap();
        assert_eq!(back.len(), 7);
        assert_eq!(back.record(0), pool.record(3));

        let bytes = fs::read(&path).unwrap();
        let mut flipped = bytes.clone();
        let mid = POOL_HEADER + 5;
        flipped[mid] ^= 0x01;
        fs::write(&path, &flipped).unwrap();
        assert!(read_pool(&path, recs, crc, &mut RawShingles::new(2)).is_err());

        fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read_pool(&path, recs, crc, &mut RawShingles::new(2)).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_parser_handles_the_manifest_shapes() {
        let v = Parser {
            b: br#"{"a": [1, {"b": "x\"y"}], "c": 7}"#,
            i: 0,
        }
        .value()
        .unwrap();
        assert_eq!(v.get("c").unwrap().as_u64().unwrap(), 7);
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64().unwrap(), 1);
        assert_eq!(arr[1].get("b").unwrap().as_str().unwrap(), "x\"y");
        assert!(Parser { b: b"{", i: 0 }.value().is_err());
        assert!(parse_manifest("[]").is_err());
    }
}
