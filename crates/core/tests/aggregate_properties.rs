//! Properties of on-device shingle aggregation (`AggregationMode::Device`).
//!
//! The contract under test: device aggregation is a pure *scheduling*
//! change. The GPU packs and radix-sorts each batch's records and the
//! host k-way-merges the resulting runs — but the merged stream replays
//! exactly the `(shingle key, node, emission index)` order of the host
//! global sort, so the shingle graph (and hence the partition) is
//! bit-identical for every kernel, pipeline mode, device size, worker
//! count, device count, and `par_sort_min` setting.

use gpclust_core::aggregate::{aggregate_with, merge_sorted_runs};
use gpclust_core::minwise::HashFamily;
use gpclust_core::multi_gpu::MultiGpuClust;
use gpclust_core::{
    AggregationMode, Executor, GpClust, PassInput, PassReport, PipelineMode, Plan, RecoveryReport,
    ShingleKernel, ShinglingParams, Sink,
};
use gpclust_gpu::{DeviceConfig, Gpu};
use gpclust_graph::generate::{planted_partition, PlantedConfig};
use gpclust_graph::Csr;
use proptest::prelude::*;

fn planted(sizes: Vec<usize>, noise: usize, seed: u64) -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: sizes,
        n_noise_vertices: noise,
        p_intra: 0.7,
        max_intra_degree: f64::MAX,
        inter_edges_per_vertex: 0.8,
        seed,
    })
    .graph
}

/// One gathered device pass at a forced batch capacity (runs sharing a
/// capacity share a batch plan — the precondition for bit-identity
/// comparisons across kernels and sinks).
#[allow(clippy::too_many_arguments)]
fn pass_at_capacity(
    gpu: &Gpu,
    g: &Csr,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    mode: PipelineMode,
    aggregation: AggregationMode,
    capacity: usize,
) -> PassReport {
    let params = ShinglingParams::light(0)
        .with_kernel(kernel)
        .with_mode(mode)
        .with_aggregation(aggregation);
    let plan = Plan::lower(&params, std::slice::from_ref(gpu)).unwrap();
    let pass = plan.pass(s, aggregation, capacity, g.offsets());
    let mut rec = RecoveryReport::default();
    Executor::new(gpu)
        .run(&pass, PassInput::of(g), family, &mut rec, Sink::Gather)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full-pipeline equivalence: Host and Device aggregation reach the
    /// same partition across kernels × schedules × device sizes, and the
    /// device run actually charges aggregation kernel time.
    #[test]
    fn device_aggregation_partition_equals_host(
        sizes in proptest::collection::vec(5usize..40, 1..5),
        noise in 0usize..20,
        graph_seed in 0u64..1000,
        param_seed in 0u64..1000,
        // Bits: overlapped schedule, fused kernel, tiny (batch-forcing) device.
        knobs in 0u8..8,
    ) {
        let (overlapped, fused, tiny) =
            (knobs & 1 != 0, knobs & 2 != 0, knobs & 4 != 0);
        let g = planted(sizes, noise, graph_seed);
        let config = if tiny {
            DeviceConfig::tiny_test_device()
        } else {
            DeviceConfig::tesla_k20()
        };
        let params = ShinglingParams {
            mode: if overlapped {
                PipelineMode::Overlapped
            } else {
                PipelineMode::Synchronous
            },
            kernel: if fused {
                ShingleKernel::FusedSelect
            } else {
                ShingleKernel::SortCompact
            },
            ..ShinglingParams::light(param_seed)
        };
        let host = GpClust::new(
            params.with_aggregation(AggregationMode::Host),
            Gpu::with_workers(config.clone(), 2),
        )
        .unwrap()
        .cluster(&g)
        .unwrap();
        let device = GpClust::new(
            params.with_aggregation(AggregationMode::Device),
            Gpu::with_workers(config, 2),
        )
        .unwrap()
        .cluster(&g)
        .unwrap();
        prop_assert_eq!(host.partition, device.partition);
        prop_assert_eq!(host.times.device_aggregation, 0.0);
        prop_assert!(device.times.device_aggregation > 0.0);
    }

    /// Pass-level bit-identity at a forced shared capacity: the k-way
    /// merge of GPU-sorted runs reproduces the host global sort's shingle
    /// graph exactly — the graph, not just the final partition — under
    /// both device schedules.
    #[test]
    fn merged_runs_bit_identical_to_host_sort(
        sizes in proptest::collection::vec(10usize..60, 1..4),
        graph_seed in 0u64..500,
        family_seed in 0u64..500,
        capacity in 512usize..4096,
        fused in proptest::bool::ANY,
    ) {
        let g = planted(sizes, 10, graph_seed);
        let family = HashFamily::new(8, family_seed ^ 0xD1CE);
        let kernel = if fused {
            ShingleKernel::FusedSelect
        } else {
            ShingleKernel::SortCompact
        };
        let host_gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let raw = pass_at_capacity(
            &host_gpu,
            &g,
            2,
            &family,
            kernel,
            PipelineMode::Synchronous,
            AggregationMode::Host,
            capacity,
        )
        .raw;
        let host_graph = aggregate_with(&raw, 0);

        let dev_gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let dev = pass_at_capacity(
            &dev_gpu,
            &g,
            2,
            &family,
            kernel,
            PipelineMode::Synchronous,
            AggregationMode::Device,
            capacity,
        );
        prop_assert!(dev.agg_kernel_seconds > 0.0);
        prop_assert_eq!(&merge_sorted_runs(2, dev.runs), &host_graph);

        let ovl_gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let ovl = pass_at_capacity(
            &ovl_gpu,
            &g,
            2,
            &family,
            kernel,
            PipelineMode::Overlapped,
            AggregationMode::Device,
            capacity,
        );
        prop_assert!(ovl.makespan > 0.0);
        prop_assert_eq!(&merge_sorted_runs(2, ovl.runs), &host_graph);
    }

    /// Multi-GPU device aggregation (per-device interior runs + the shared
    /// boundary-fragment run) matches the single-K20 host-aggregation
    /// partition for any device count.
    #[test]
    fn multi_gpu_device_aggregation_matches_host(
        sizes in proptest::collection::vec(5usize..30, 1..4),
        graph_seed in 0u64..500,
        param_seed in 0u64..500,
        n_dev in 1usize..4,
    ) {
        let g = planted(sizes, 8, graph_seed);
        let params = ShinglingParams::light(param_seed);
        let host = GpClust::new(params, Gpu::new(DeviceConfig::tesla_k20()))
            .unwrap()
            .cluster(&g)
            .unwrap();
        let gpus = (0..n_dev)
            .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
            .collect();
        let multi = MultiGpuClust::new(params.with_aggregation(AggregationMode::Device), gpus)
            .unwrap()
            .cluster(&g)
            .unwrap();
        prop_assert_eq!(host.partition, multi.partition);
    }

    /// `par_sort_min` is a pure performance knob: always-parallel (0) and
    /// always-serial (`usize::MAX`) host sorts agree with each other and
    /// with device aggregation's fragment/fallback sorts.
    #[test]
    fn par_sort_min_never_changes_results(
        sizes in proptest::collection::vec(5usize..30, 1..4),
        graph_seed in 0u64..500,
        param_seed in 0u64..500,
        device_agg in proptest::bool::ANY,
    ) {
        let g = planted(sizes, 8, graph_seed);
        let aggregation = if device_agg {
            AggregationMode::Device
        } else {
            AggregationMode::Host
        };
        let params = ShinglingParams::light(param_seed).with_aggregation(aggregation);
        let always_par = GpClust::new(
            params.with_par_sort_min(0),
            Gpu::new(DeviceConfig::tesla_k20()),
        )
        .unwrap()
        .cluster(&g)
        .unwrap();
        let always_serial = GpClust::new(
            params.with_par_sort_min(usize::MAX),
            Gpu::new(DeviceConfig::tesla_k20()),
        )
        .unwrap()
        .cluster(&g)
        .unwrap();
        prop_assert_eq!(always_par.partition, always_serial.partition);
    }
}
