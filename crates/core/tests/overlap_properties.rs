//! Properties of the overlapped (double-buffered streams) schedule.
//!
//! The contract under test, from two sides:
//!
//! 1. **Bit-identical results** — `PipelineMode::Overlapped` must emit
//!    exactly the records and partitions of the synchronous schedule, for
//!    arbitrary planted graphs, device sizes (single-batch K20 vs the tiny
//!    device that forces batching and prefetch), and worker counts.
//! 2. **Honest accounting** — every async transfer still lands in the
//!    `h2d/d2h` totals (Table I's "Data c→g"/"Data g→c" columns), is
//!    mirrored in the overlap sub-accounts, and the pipelined makespan
//!    excludes the transfer time hidden behind compute.

use gpclust_core::minwise::HashFamily;
use gpclust_core::shingle::RawShingles;
use gpclust_core::{
    Executor, GpClust, PassInput, PipelineMode, Plan, RecoveryReport, ShingleKernel,
    ShinglingParams, Sink,
};
use gpclust_gpu::{DeviceConfig, Gpu};
use gpclust_graph::generate::{planted_partition, PlantedConfig};
use gpclust_graph::Csr;
use proptest::prelude::*;

fn planted(sizes: Vec<usize>, noise: usize, seed: u64) -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: sizes,
        n_noise_vertices: noise,
        p_intra: 0.7,
        max_intra_degree: f64::MAX,
        inter_edges_per_vertex: 0.8,
        seed,
    })
    .graph
}

/// One device pass at the device's own capacity through the plan/executor
/// layer, gathering the raw record stream. Returns `(records, makespan)`;
/// the makespan is the serialized device time under `Synchronous` and the
/// two-stream pipeline's critical path under `Overlapped`.
fn gather_pass(
    gpu: &Gpu,
    g: &Csr,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    mode: PipelineMode,
) -> (RawShingles, f64) {
    let params = ShinglingParams::light(0)
        .with_kernel(kernel)
        .with_mode(mode);
    let plan = Plan::lower(&params, std::slice::from_ref(gpu)).unwrap();
    let pass = plan.pass(s, plan.aggregation, plan.capacity, g.offsets());
    let mut rec = RecoveryReport::default();
    let report = Executor::new(gpu)
        .run(&pass, PassInput::of(g), family, &mut rec, Sink::Gather)
        .unwrap();
    (report.raw, report.makespan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full-pipeline equivalence: same partition from both schedules on
    /// arbitrary planted-partition graphs, devices, and worker counts.
    #[test]
    fn overlapped_partition_equals_synchronous(
        sizes in proptest::collection::vec(5usize..40, 1..5),
        noise in 0usize..20,
        graph_seed in 0u64..1000,
        param_seed in 0u64..1000,
        tiny in proptest::bool::ANY,
        workers in 1usize..4,
    ) {
        let g = planted(sizes, noise, graph_seed);
        let config = if tiny {
            DeviceConfig::tiny_test_device()
        } else {
            DeviceConfig::tesla_k20()
        };
        let params = ShinglingParams::light(param_seed);
        let sync = GpClust::new(params, Gpu::with_workers(config.clone(), workers))
            .unwrap()
            .cluster(&g)
            .unwrap();
        let ovl = GpClust::new(
            params.with_mode(PipelineMode::Overlapped),
            Gpu::with_workers(config, workers),
        )
        .unwrap()
        .cluster(&g)
        .unwrap();
        prop_assert_eq!(sync.partition, ovl.partition);
        // The makespan the overlapped run reports never exceeds — and on
        // any multi-trial workload undercuts — the serialized path.
        prop_assert!(
            ovl.times.device_pipelined <= ovl.times.device_serialized() + 1e-9
        );
    }

    /// Record-level equivalence under forced batching: the raw per-trial
    /// shingle stream (order included) is identical, not just the final
    /// partition.
    #[test]
    fn raw_records_bit_identical_under_batching(
        sizes in proptest::collection::vec(10usize..60, 1..4),
        graph_seed in 0u64..500,
        family_seed in 0u64..500,
        fused in proptest::bool::ANY,
    ) {
        let g = planted(sizes, 10, graph_seed);
        let family = HashFamily::new(8, family_seed ^ 0xABCD);
        let kernel = if fused {
            ShingleKernel::FusedSelect
        } else {
            ShingleKernel::SortCompact
        };
        let sync_gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let (sync, _) =
            gather_pass(&sync_gpu, &g, 2, &family, kernel, PipelineMode::Synchronous);
        let ovl_gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 2);
        let (ovl, makespan) =
            gather_pass(&ovl_gpu, &g, 2, &family, kernel, PipelineMode::Overlapped);
        prop_assert_eq!(sync, ovl);
        prop_assert!(makespan > 0.0);
    }
}

/// Overlapped D2H time is accounted in the totals (it still crosses the
/// bus) but excluded from the pipelined critical path (it hides behind
/// the next trial's kernels) — the bookkeeping the tentpole exists for.
#[test]
fn overlapped_d2h_accounted_but_off_critical_path() {
    let g = planted(vec![60, 45, 30], 20, 99);
    let family = HashFamily::new(16, 0x5EED);
    let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
    let (_, makespan) = gather_pass(
        &gpu,
        &g,
        2,
        &family,
        ShingleKernel::SortCompact,
        PipelineMode::Overlapped,
    );
    let snap = gpu.counters();

    // Every transfer of the pass was issued asynchronously: the overlap
    // sub-accounts mirror the totals and nothing was a blocking copy.
    assert!(snap.d2h_overlapped_seconds > 0.0);
    assert!(snap.h2d_overlapped_seconds > 0.0);
    assert!((snap.d2h_overlapped_seconds - snap.d2h_seconds).abs() < 1e-9);
    assert!((snap.h2d_overlapped_seconds - snap.h2d_seconds).abs() < 1e-9);
    assert!(snap.blocking_transfer_seconds() < 1e-12);

    // The makespan still pays for the upload (the first kernel waits on
    // it) and all kernels …
    assert!(makespan >= snap.kernel_seconds + snap.h2d_seconds - 1e-6);
    // … but beats the serialized path, because all D2H except the final
    // trial's is hidden behind the next trial's compute: with 16 trials,
    // ≥ 15/16 of the D2H total leaves the critical path.
    assert!(makespan < snap.serialized_device_seconds());
    let hidden = snap.serialized_device_seconds() - makespan;
    assert!(
        hidden > 0.5 * snap.d2h_seconds,
        "hidden {hidden} vs d2h {}",
        snap.d2h_seconds
    );
}
