//! # gpclust-seqsim — synthetic metagenome substrate
//!
//! The gpClust paper evaluates on ~2 million putative protein sequences
//! (ORFs) from the Sorcerer II Global Ocean Sampling (GOS) project, with a
//! benchmark partition of predicted protein families. Neither the sequence
//! data nor the family benchmark is redistributable, so this crate builds the
//! closest synthetic equivalent:
//!
//! * **Family-structured protein generation** — each protein family has an
//!   ancestral sequence; members are derived by point mutations, indels and
//!   shotgun-style fragmentation, with per-member divergence drawn from a
//!   configurable schedule. Family sizes follow a truncated power law that
//!   matches the heavy-tailed size statistics reported in Table IV of the
//!   paper (benchmark families average 2,465 ± 4,372 members at 2M scale).
//! * **Singleton noise** — a configurable fraction of ORFs are random
//!   background sequences unrelated to any family, reproducing the paper's
//!   singleton vertices (2,921 of 20K in the small dataset).
//! * **Exact benchmark partition** — because families are planted, the
//!   ground-truth membership is known exactly and serves as the "benchmark
//!   partition" that Table III scores PPV/NPV/SP/SE against.
//!
//! The generated data feeds `gpclust-homology` (pGraph-like graph
//! construction) and, through it, the clustering algorithms in
//! `gpclust-core`.
//!
//! All generation is deterministic given a `u64` seed.

pub mod alphabet;
pub mod dna;
pub mod family;
pub mod fasta;
pub mod metagenome;
pub mod mutate;
pub mod sequence;
pub mod stats;

pub use alphabet::{AminoAcid, ALPHABET_SIZE};
pub use family::{FamilyConfig, FamilyGenerator};
pub use metagenome::{Metagenome, MetagenomeConfig};
pub use mutate::MutationModel;
pub use sequence::{Protein, SeqId};
