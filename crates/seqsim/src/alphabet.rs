//! The 20-letter amino-acid alphabet, residue encoding, and background
//! composition.
//!
//! Residues are stored throughout the workspace as `u8` codes in `0..20`
//! (index into [`RESIDUES`]), which keeps sequences compact and makes
//! substitution-matrix lookups a direct 2-D index. The background frequencies
//! are the Robinson–Robinson amino-acid frequencies commonly used as the null
//! model in protein alignment statistics.

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;

/// Number of amino-acid symbols.
pub const ALPHABET_SIZE: usize = 20;

/// One-letter residue codes in canonical (alphabetical) order.
///
/// The index of a letter in this array is its `u8` code.
pub const RESIDUES: [u8; ALPHABET_SIZE] = [
    b'A', b'C', b'D', b'E', b'F', b'G', b'H', b'I', b'K', b'L', b'M', b'N', b'P', b'Q', b'R', b'S',
    b'T', b'V', b'W', b'Y',
];

/// Robinson–Robinson background frequencies, aligned with [`RESIDUES`].
pub const BACKGROUND_FREQS: [f64; ALPHABET_SIZE] = [
    0.07805, // A
    0.01925, // C
    0.05364, // D
    0.06295, // E
    0.03856, // F
    0.07377, // G
    0.02199, // H
    0.05142, // I
    0.05744, // K
    0.09019, // L
    0.02243, // M
    0.04487, // N
    0.05203, // P
    0.04264, // Q
    0.05129, // R
    0.07120, // S
    0.05841, // T
    0.06441, // V
    0.01330, // W
    0.03216, // Y
];

/// A typed amino-acid residue.
///
/// Mostly a convenience wrapper; hot paths work on raw `u8` codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AminoAcid(u8);

impl AminoAcid {
    /// Construct from a `0..20` code. Returns `None` if out of range.
    #[inline]
    pub fn from_code(code: u8) -> Option<Self> {
        (code < ALPHABET_SIZE as u8).then_some(AminoAcid(code))
    }

    /// Construct from a one-letter symbol (case-insensitive).
    pub fn from_letter(letter: u8) -> Option<Self> {
        let upper = letter.to_ascii_uppercase();
        RESIDUES
            .iter()
            .position(|&r| r == upper)
            .map(|i| AminoAcid(i as u8))
    }

    /// The `0..20` code of this residue.
    #[inline]
    pub fn code(self) -> u8 {
        self.0
    }

    /// The one-letter symbol of this residue.
    #[inline]
    pub fn letter(self) -> u8 {
        RESIDUES[self.0 as usize]
    }

    /// Background frequency of this residue under the null model.
    #[inline]
    pub fn background_freq(self) -> f64 {
        BACKGROUND_FREQS[self.0 as usize]
    }
}

/// Convert a residue code to its one-letter symbol.
///
/// # Panics
/// Panics if `code >= 20`.
#[inline]
pub fn code_to_letter(code: u8) -> u8 {
    RESIDUES[code as usize]
}

/// Convert a one-letter symbol to its residue code, if valid.
#[inline]
pub fn letter_to_code(letter: u8) -> Option<u8> {
    AminoAcid::from_letter(letter).map(AminoAcid::code)
}

/// Samples residue codes from the Robinson–Robinson background distribution.
///
/// Used for noise ORFs and for the random portion of mutated positions.
pub struct BackgroundSampler {
    dist: WeightedIndex<f64>,
}

impl BackgroundSampler {
    /// Build a sampler over [`BACKGROUND_FREQS`].
    pub fn new() -> Self {
        BackgroundSampler {
            dist: WeightedIndex::new(BACKGROUND_FREQS).expect("frequencies are positive"),
        }
    }

    /// Draw one residue code.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        self.dist.sample(rng) as u8
    }

    /// Draw a sequence of `len` residue codes.
    pub fn sample_seq<R: Rng + ?Sized>(&self, rng: &mut R, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.sample(rng)).collect()
    }
}

impl Default for BackgroundSampler {
    fn default() -> Self {
        Self::new()
    }
}

/// Encode an ASCII protein string into residue codes, skipping whitespace.
///
/// Returns `None` if any non-whitespace byte is not a valid residue letter.
pub fn encode(ascii: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(ascii.len());
    for &b in ascii {
        if b.is_ascii_whitespace() {
            continue;
        }
        out.push(letter_to_code(b)?);
    }
    Some(out)
}

/// Decode residue codes back into an ASCII protein string.
///
/// # Panics
/// Panics if any code is out of range.
pub fn decode(codes: &[u8]) -> Vec<u8> {
    codes.iter().map(|&c| code_to_letter(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frequencies_sum_to_one() {
        let sum: f64 = BACKGROUND_FREQS.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum = {sum}");
    }

    #[test]
    fn letter_code_roundtrip() {
        for code in 0..ALPHABET_SIZE as u8 {
            let letter = code_to_letter(code);
            assert_eq!(letter_to_code(letter), Some(code));
        }
    }

    #[test]
    fn from_letter_is_case_insensitive() {
        assert_eq!(
            AminoAcid::from_letter(b'a').map(AminoAcid::code),
            AminoAcid::from_letter(b'A').map(AminoAcid::code)
        );
    }

    #[test]
    fn invalid_letters_rejected() {
        for bad in [b'B', b'J', b'O', b'U', b'X', b'Z', b'1', b'-'] {
            assert_eq!(AminoAcid::from_letter(bad), None, "{}", bad as char);
        }
    }

    #[test]
    fn from_code_bounds() {
        assert!(AminoAcid::from_code(19).is_some());
        assert!(AminoAcid::from_code(20).is_none());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = b"ACDEFGHIKLMNPQRSTVWY";
        let codes = encode(s).unwrap();
        assert_eq!(decode(&codes), s.to_vec());
    }

    #[test]
    fn encode_skips_whitespace() {
        let codes = encode(b"AC DE\nFG").unwrap();
        assert_eq!(decode(&codes), b"ACDEFG".to_vec());
    }

    #[test]
    fn encode_rejects_invalid() {
        assert!(encode(b"ACXB").is_none());
    }

    #[test]
    fn background_sampler_matches_frequencies() {
        let mut rng = StdRng::seed_from_u64(7);
        let sampler = BackgroundSampler::new();
        let n = 200_000;
        let mut counts = [0usize; ALPHABET_SIZE];
        for _ in 0..n {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let observed = c as f64 / n as f64;
            let expected = BACKGROUND_FREQS[i];
            assert!(
                (observed - expected).abs() < 0.01,
                "residue {i}: observed {observed}, expected {expected}"
            );
        }
    }
}
