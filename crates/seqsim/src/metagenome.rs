//! Whole-dataset generator: a synthetic metagenomic ORF collection with a
//! planted family structure.
//!
//! This is the stand-in for the paper's GOS-derived benchmark data. The
//! generator plants protein families with sizes drawn from a truncated
//! power law (heavy-tailed, like the benchmark statistics of Table IV),
//! derives members via [`crate::family`], adds unrelated singleton noise
//! ORFs, and shuffles sequence ids so vertex numbering carries no family
//! signal. The planted membership is returned as the **benchmark partition**
//! used by the quality studies (Table III/IV, Figure 5).

use crate::alphabet::BackgroundSampler;
use crate::family::{FamilyConfig, FamilyGenerator};
use crate::mutate::MutationModel;
use crate::sequence::{Protein, SeqId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Zipf};
use serde::{Deserialize, Serialize};

/// Configuration for a synthetic metagenome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetagenomeConfig {
    /// Total number of ORF sequences to generate (families + noise).
    pub n_sequences: usize,
    /// Fraction of sequences that are unrelated noise ORFs. The paper's 20K
    /// dataset had 2,921 / 20,000 ≈ 14.6 % singleton vertices.
    pub singleton_frac: f64,
    /// Smallest planted family size.
    pub min_family_size: usize,
    /// Largest planted family size (power-law truncation point).
    pub max_family_size: usize,
    /// Power-law exponent for family sizes; larger → lighter tail.
    pub zipf_exponent: f64,
    /// Median ORF length in residues (log-normal).
    pub median_orf_len: usize,
    /// Log-space standard deviation of ORF length.
    pub orf_len_sigma: f64,
    /// Fraction of each family that is fringe (loosely related).
    pub fringe_frac: f64,
    /// Number of distinct *promiscuous domains* in the pool. Real protein
    /// universes contain mobile domains shared across otherwise unrelated
    /// families; they induce cross-family homology edges, which is the
    /// mechanism behind the GOS k-neighbor baseline's chaining failure mode
    /// the paper analyzes in §IV-D. Zero disables domains.
    pub domain_pool: usize,
    /// Fraction of families that carry one of the pool domains.
    pub domain_family_frac: f64,
    /// Within a carrying family, fraction of members that include the domain.
    pub domain_member_frac: f64,
    /// Length of each domain in residues.
    pub domain_len: usize,
    /// Target members per subfamily; families larger than this split into
    /// `ceil(size / subfamily_size)` subfamilies (0 disables subfamily
    /// structure). See [`crate::family::FamilyConfig::n_subfamilies`].
    pub subfamily_size: usize,
    /// Mutation model for core members.
    pub core_model: MutationModel,
    /// Mutation model for fringe members.
    pub fringe_model: MutationModel,
    /// Master RNG seed; the whole dataset is a pure function of the config.
    pub seed: u64,
}

impl MetagenomeConfig {
    /// A configuration shaped like the paper's 20K-sequence dataset:
    /// ~15 % singletons, family sizes 4..=600, heavy tail.
    pub fn gos_20k(seed: u64) -> Self {
        MetagenomeConfig {
            n_sequences: 20_000,
            singleton_frac: 0.146,
            min_family_size: 4,
            max_family_size: 600,
            zipf_exponent: 1.6,
            median_orf_len: 110,
            orf_len_sigma: 0.35,
            fringe_frac: 0.5,
            domain_pool: 6,
            domain_family_frac: 0.12,
            domain_member_frac: 0.35,
            domain_len: 35,
            subfamily_size: 30,
            core_model: MutationModel::family_default(),
            fringe_model: MutationModel::fringe_default(),
            seed,
        }
    }

    /// A configuration shaped like the paper's 2M-sequence dataset, scaled to
    /// `n_sequences`. Family sizes extend further into the tail (the GOS
    /// benchmark's largest family had 56,266 members out of 2M ≈ 2.8 %).
    pub fn gos_2m_scaled(n_sequences: usize, seed: u64) -> Self {
        let max_family = ((n_sequences as f64) * 0.028).round().max(50.0) as usize;
        MetagenomeConfig {
            n_sequences,
            singleton_frac: 0.22,
            min_family_size: 4,
            max_family_size: max_family,
            zipf_exponent: 1.45,
            median_orf_len: 110,
            orf_len_sigma: 0.35,
            fringe_frac: 0.55,
            domain_pool: 8,
            domain_family_frac: 0.12,
            domain_member_frac: 0.35,
            domain_len: 35,
            subfamily_size: 30,
            core_model: MutationModel::family_default(),
            fringe_model: MutationModel::fringe_default(),
            seed,
        }
    }

    /// A tiny configuration for tests and the quickstart example.
    pub fn tiny(n_sequences: usize, seed: u64) -> Self {
        MetagenomeConfig {
            n_sequences,
            singleton_frac: 0.1,
            min_family_size: 3,
            max_family_size: (n_sequences / 4).max(4),
            zipf_exponent: 1.5,
            median_orf_len: 80,
            orf_len_sigma: 0.3,
            fringe_frac: 0.25,
            domain_pool: 0,
            domain_family_frac: 0.0,
            domain_member_frac: 0.0,
            domain_len: 40,
            subfamily_size: 0,
            core_model: MutationModel::family_default(),
            fringe_model: MutationModel::fringe_default(),
            seed,
        }
    }
}

/// A generated metagenome: sequences plus the planted benchmark partition.
#[derive(Debug, Clone)]
pub struct Metagenome {
    /// All ORF sequences; `proteins[i].id == i`.
    pub proteins: Vec<Protein>,
    /// Planted family of each sequence; `None` for noise ORFs.
    pub truth: Vec<Option<u32>>,
    /// `is_core[i]` — whether sequence `i` is a core member of its family
    /// (always `false` for noise).
    pub is_core: Vec<bool>,
    /// Number of planted families.
    pub n_families: u32,
}

impl Metagenome {
    /// Generate a metagenome from `config`. Deterministic in the config.
    pub fn generate(config: &MetagenomeConfig) -> Self {
        assert!(config.n_sequences > 0, "empty metagenome requested");
        assert!(
            config.min_family_size >= 2,
            "families must have at least 2 members"
        );
        assert!(config.max_family_size >= config.min_family_size);

        let mut rng = StdRng::seed_from_u64(config.seed);
        let n_noise = ((config.n_sequences as f64) * config.singleton_frac).round() as usize;
        let n_noise = n_noise.min(config.n_sequences.saturating_sub(config.min_family_size));
        let n_family_seqs = config.n_sequences - n_noise;

        // Draw family sizes from a truncated Zipf until the family budget is
        // filled; the final family absorbs the remainder so counts are exact.
        let sizes = sample_family_sizes(&mut rng, config, n_family_seqs);

        let len_dist = LogNormal::new((config.median_orf_len as f64).ln(), config.orf_len_sigma)
            .expect("valid log-normal");
        let generator = FamilyGenerator::new();
        let background = BackgroundSampler::new();

        let mut proteins = Vec::with_capacity(config.n_sequences);
        let mut truth: Vec<Option<u32>> = Vec::with_capacity(config.n_sequences);
        let mut is_core: Vec<bool> = Vec::with_capacity(config.n_sequences);

        // Promiscuous domain pool: ancestral domain sequences shared across
        // families (the source of cross-family homology edges).
        let domains: Vec<Vec<u8>> = (0..config.domain_pool)
            .map(|_| background.sample_seq(&mut rng, config.domain_len.max(1)))
            .collect();
        let domain_model = MutationModel::family_default().scaled(0.5);

        for (family_id, &size) in sizes.iter().enumerate() {
            let ancestor_len = (len_dist.sample(&mut rng).round() as usize).clamp(30, 2_000);
            let n_subfamilies = if config.subfamily_size > 0 {
                size.div_ceil(config.subfamily_size).max(1)
            } else {
                1
            };
            let fam_cfg = FamilyConfig {
                size,
                fringe_frac: config.fringe_frac,
                ancestor_len,
                n_subfamilies,
                subancestor_model: FamilyConfig::subancestor_default(),
                core_model: config.core_model,
                fringe_model: config.fringe_model,
            };
            let first_id = proteins.len() as SeqId;
            let fam = generator.generate(&mut rng, family_id as u32, first_id, &fam_cfg);
            // Does this family carry a promiscuous domain?
            let family_domain =
                if !domains.is_empty() && rng.gen_bool(config.domain_family_frac.clamp(0.0, 1.0)) {
                    Some(rng.gen_range(0..domains.len()))
                } else {
                    None
                };
            for (mut m, core) in fam.members.into_iter().zip(fam.is_core) {
                if let Some(d) = family_domain {
                    if rng.gen_bool(config.domain_member_frac.clamp(0.0, 1.0)) {
                        // Insert a lightly-mutated domain copy at a random
                        // position of the member.
                        let copy = domain_model.mutate(&mut rng, &domains[d], &background);
                        let at = rng.gen_range(0..=m.residues.len());
                        m.residues.splice(at..at, copy);
                    }
                }
                proteins.push(m);
                truth.push(Some(family_id as u32));
                is_core.push(core);
            }
        }
        let n_families = sizes.len() as u32;

        for i in 0..n_noise {
            let len = (len_dist.sample(&mut rng).round() as usize).clamp(30, 2_000);
            let residues = background.sample_seq(&mut rng, len);
            let id = proteins.len() as SeqId;
            proteins.push(Protein::new(id, format!("noise{i:06}"), residues));
            truth.push(None);
            is_core.push(false);
        }

        // Shuffle so that sequence ids carry no family signal, then reassign
        // dense ids in the shuffled order.
        let mut order: Vec<usize> = (0..proteins.len()).collect();
        order.shuffle(&mut rng);
        let mut shuffled_proteins = Vec::with_capacity(proteins.len());
        let mut shuffled_truth = Vec::with_capacity(truth.len());
        let mut shuffled_core = Vec::with_capacity(is_core.len());
        for (new_id, &old) in order.iter().enumerate() {
            let mut p = proteins[old].clone();
            p.id = new_id as SeqId;
            shuffled_proteins.push(p);
            shuffled_truth.push(truth[old]);
            shuffled_core.push(is_core[old]);
        }

        Metagenome {
            proteins: shuffled_proteins,
            truth: shuffled_truth,
            is_core: shuffled_core,
            n_families,
        }
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.proteins.len()
    }

    /// True if there are no sequences.
    pub fn is_empty(&self) -> bool {
        self.proteins.is_empty()
    }

    /// Sizes of the planted families, indexed by family id.
    pub fn family_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_families as usize];
        for t in self.truth.iter().flatten() {
            sizes[*t as usize] += 1;
        }
        sizes
    }

    /// Number of noise (non-family) sequences.
    pub fn n_noise(&self) -> usize {
        self.truth.iter().filter(|t| t.is_none()).count()
    }
}

impl Metagenome {
    /// Generate a metagenome **through simulated DNA reads**: every member
    /// protein is reverse-translated, embedded in a shotgun-style read with
    /// random flanking DNA, and then *re-called* by the six-frame ORF scan
    /// — the exact provenance the paper describes ("shotgun sequencing ...
    /// translated into six frames to result in ORFs"). The observed
    /// sequence is the longest ORF of the read, so random stop codons in
    /// the flanks and frame effects add realistic calling noise on top of
    /// the mutation model.
    ///
    /// Reads whose ORF calling loses the member entirely (rare, very short
    /// fragments) fall back to the direct protein.
    pub fn generate_via_dna(config: &MetagenomeConfig, flank_bp: usize) -> Self {
        let mut mg = Metagenome::generate(config);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0D0A_0D0A);
        for p in &mut mg.proteins {
            if p.residues.is_empty() {
                continue;
            }
            let coding = crate::dna::reverse_translate(&mut rng, &p.residues);
            let mut read = crate::dna::random_dna(&mut rng, flank_bp);
            read.extend_from_slice(&coding);
            read.extend(crate::dna::random_dna(&mut rng, flank_bp));
            let min_len = (p.residues.len() / 2).max(10);
            if let Some(orf) = crate::dna::six_frame_orfs(&read, min_len)
                .into_iter()
                .max_by_key(|o| o.protein.len())
            {
                p.residues = orf.protein;
            }
        }
        mg
    }
}

/// Draw family sizes from a truncated Zipf until `budget` sequences are
/// allocated. The last family is clamped to spend the budget exactly.
fn sample_family_sizes<R: Rng + ?Sized>(
    rng: &mut R,
    config: &MetagenomeConfig,
    budget: usize,
) -> Vec<usize> {
    let zipf = Zipf::new(config.max_family_size as u64, config.zipf_exponent)
        .expect("valid zipf parameters");
    let mut sizes = Vec::new();
    let mut remaining = budget;
    while remaining >= config.min_family_size {
        let mut size = zipf.sample(rng) as usize;
        if size < config.min_family_size {
            size = config.min_family_size;
        }
        if size > remaining {
            size = remaining;
        }
        sizes.push(size);
        remaining -= size;
    }
    // Fold any sub-minimum remainder into the last family.
    if remaining > 0 {
        if let Some(last) = sizes.last_mut() {
            *last += remaining;
        } else {
            sizes.push(remaining.max(config.min_family_size));
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sequence_count() {
        let mg = Metagenome::generate(&MetagenomeConfig::tiny(500, 9));
        assert_eq!(mg.len(), 500);
        assert_eq!(mg.truth.len(), 500);
        assert_eq!(mg.is_core.len(), 500);
    }

    #[test]
    fn dense_ids_after_shuffle() {
        let mg = Metagenome::generate(&MetagenomeConfig::tiny(300, 10));
        for (i, p) in mg.proteins.iter().enumerate() {
            assert_eq!(p.id as usize, i);
        }
    }

    #[test]
    fn noise_fraction_close_to_config() {
        let cfg = MetagenomeConfig::tiny(2_000, 11);
        let mg = Metagenome::generate(&cfg);
        let frac = mg.n_noise() as f64 / mg.len() as f64;
        assert!((frac - cfg.singleton_frac).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn family_sizes_respect_bounds() {
        let cfg = MetagenomeConfig::tiny(2_000, 12);
        let mg = Metagenome::generate(&cfg);
        let sizes = mg.family_sizes();
        assert!(!sizes.is_empty());
        // All but possibly the remainder-absorbing family obey the minimum.
        let violations = sizes.iter().filter(|&&s| s < cfg.min_family_size).count();
        assert!(violations <= 1, "sizes: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>() + mg.n_noise(), mg.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = MetagenomeConfig::tiny(400, 77);
        let a = Metagenome::generate(&cfg);
        let b = Metagenome::generate(&cfg);
        assert_eq!(a.proteins, b.proteins);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Metagenome::generate(&MetagenomeConfig::tiny(400, 1));
        let b = Metagenome::generate(&MetagenomeConfig::tiny(400, 2));
        assert_ne!(a.proteins, b.proteins);
    }

    #[test]
    fn shuffle_mixes_families() {
        // After shuffling, the first 20 ids should not all share a family.
        let mg = Metagenome::generate(&MetagenomeConfig::tiny(1_000, 13));
        let firsts: Vec<_> = mg.truth.iter().take(20).collect();
        let all_same = firsts.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same);
    }

    #[test]
    fn noise_is_never_core() {
        let mg = Metagenome::generate(&MetagenomeConfig::tiny(600, 14));
        for i in 0..mg.len() {
            if mg.truth[i].is_none() {
                assert!(!mg.is_core[i]);
            }
        }
    }

    #[test]
    fn heavy_tail_present_at_scale() {
        let cfg = MetagenomeConfig::gos_2m_scaled(5_000, 15);
        let mg = Metagenome::generate(&cfg);
        let sizes = mg.family_sizes();
        let max = *sizes.iter().max().unwrap();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            max as f64 > 4.0 * mean,
            "expected heavy tail: max {max}, mean {mean}"
        );
    }

    #[test]
    fn via_dna_preserves_structure_and_most_sequence() {
        let cfg = MetagenomeConfig::tiny(200, 31);
        let direct = Metagenome::generate(&cfg);
        let via = Metagenome::generate_via_dna(&cfg, 60);
        assert_eq!(via.len(), direct.len());
        assert_eq!(via.truth, direct.truth);
        // ORF calling keeps the member embedded: observed sequences contain
        // most of the original protein for the vast majority of reads.
        let mut contained = 0usize;
        for (d, v) in direct.proteins.iter().zip(&via.proteins) {
            // The called ORF must contain the original as a substring
            // (flanks can only extend it) unless calling fell back.
            let hay = &v.residues;
            let needle = &d.residues;
            if needle.is_empty()
                || hay
                    .windows(needle.len().min(hay.len()))
                    .any(|w| w == &needle[..needle.len().min(hay.len())])
            {
                contained += 1;
            }
        }
        // A minority of reads lose the member to a longer ORF in another
        // frame — genuine six-frame calling noise; most must survive.
        assert!(
            contained * 4 >= via.len() * 3,
            "only {contained}/{} reads preserved their member",
            via.len()
        );
    }

    #[test]
    fn via_dna_is_deterministic() {
        let cfg = MetagenomeConfig::tiny(100, 33);
        let a = Metagenome::generate_via_dna(&cfg, 40);
        let b = Metagenome::generate_via_dna(&cfg, 40);
        assert_eq!(a.proteins, b.proteins);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_min_family() {
        let mut cfg = MetagenomeConfig::tiny(100, 0);
        cfg.min_family_size = 1;
        Metagenome::generate(&cfg);
    }
}
