//! DNA-level simulation: shotgun fragments and six-frame ORF extraction.
//!
//! The paper's data provenance: environmental DNA is shotgun-shredded into
//! fragments of a few hundred bp, sequenced, "and subsequently translated
//! into six frames to result in Open Reading Frames (ORFs) or putative
//! protein sequences". This module implements that front end:
//!
//! * the standard genetic code ([`translate_codon`], [`CODON_TABLE`] order),
//! * reverse complement,
//! * [`six_frame_orfs`] — scan all six reading frames of a DNA fragment
//!   for maximal stop-free stretches above a length threshold,
//! * [`reverse_translate`] — embed a protein back into DNA (choosing
//!   random synonymous codons), used by the generator to plant protein
//!   families inside simulated reads.
//!
//! Residues outside the 20-letter alphabet never arise: stop codons
//! delimit ORFs rather than appearing inside them.

use crate::alphabet::letter_to_code;
use rand::Rng;

/// DNA bases, coded 0..4 in the order `ACGT`.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Amino-acid one-letter codes by codon index `16·b0 + 4·b1 + b2` (bases
/// coded A=0, C=1, G=2, T=3); `*` marks stop codons.
///
/// This is the standard genetic code laid out in ACGT-major order.
pub const CODON_TABLE: [u8; 64] = [
    // AAA AAC AAG AAT   ACA ACC ACG ACT   AGA AGC AGG AGT   ATA ATC ATG ATT
    b'K', b'N', b'K', b'N', b'T', b'T', b'T', b'T', b'R', b'S', b'R', b'S', b'I', b'I', b'M', b'I',
    // CAA CAC CAG CAT   CCA CCC CCG CCT   CGA CGC CGG CGT   CTA CTC CTG CTT
    b'Q', b'H', b'Q', b'H', b'P', b'P', b'P', b'P', b'R', b'R', b'R', b'R', b'L', b'L', b'L', b'L',
    // GAA GAC GAG GAT   GCA GCC GCG GCT   GGA GGC GGG GGT   GTA GTC GTG GTT
    b'E', b'D', b'E', b'D', b'A', b'A', b'A', b'A', b'G', b'G', b'G', b'G', b'V', b'V', b'V', b'V',
    // TAA TAC TAG TAT   TCA TCC TCG TCT   TGA TGC TGG TGT   TTA TTC TTG TTT
    b'*', b'Y', b'*', b'Y', b'S', b'S', b'S', b'S', b'*', b'C', b'W', b'C', b'L', b'F', b'L', b'F',
];

/// Base letter → 0..4 code. Case-insensitive; `None` for non-ACGT.
#[inline]
pub fn base_code(base: u8) -> Option<u8> {
    match base.to_ascii_uppercase() {
        b'A' => Some(0),
        b'C' => Some(1),
        b'G' => Some(2),
        b'T' => Some(3),
        _ => None,
    }
}

/// Translate one codon of base codes; `None` is a stop codon.
#[inline]
pub fn translate_codon(b0: u8, b1: u8, b2: u8) -> Option<u8> {
    let aa = CODON_TABLE[(16 * b0 + 4 * b1 + b2) as usize];
    (aa != b'*').then(|| letter_to_code(aa).expect("codon table letter"))
}

/// Reverse complement of a base-code sequence.
pub fn reverse_complement(dna: &[u8]) -> Vec<u8> {
    dna.iter().rev().map(|&b| 3 - b).collect()
}

/// An ORF found in a fragment: frame (0..3 forward, 3..6 reverse), start
/// offset in that frame's reading direction, and the translated protein.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orf {
    /// 0,1,2 = forward frames; 3,4,5 = reverse-complement frames.
    pub frame: u8,
    /// Codon-aligned start offset within the (possibly reversed) strand.
    pub start: usize,
    /// Translated residues (codes 0..20).
    pub protein: Vec<u8>,
}

/// Extract all maximal stop-free translations of length ≥ `min_len`
/// residues across all six frames of `dna` (base codes).
pub fn six_frame_orfs(dna: &[u8], min_len: usize) -> Vec<Orf> {
    let mut orfs = Vec::new();
    let rc = reverse_complement(dna);
    for (strand_idx, strand) in [dna, rc.as_slice()].into_iter().enumerate() {
        for frame in 0..3usize {
            let mut current: Vec<u8> = Vec::new();
            let mut start = frame;
            let mut pos = frame;
            while pos + 3 <= strand.len() {
                match translate_codon(strand[pos], strand[pos + 1], strand[pos + 2]) {
                    Some(aa) => {
                        if current.is_empty() {
                            start = pos;
                        }
                        current.push(aa);
                    }
                    None => {
                        if current.len() >= min_len {
                            orfs.push(Orf {
                                frame: (strand_idx * 3 + frame) as u8,
                                start,
                                protein: std::mem::take(&mut current),
                            });
                        }
                        current.clear();
                    }
                }
                pos += 3;
            }
            if current.len() >= min_len {
                orfs.push(Orf {
                    frame: (strand_idx * 3 + frame) as u8,
                    start,
                    protein: current,
                });
            }
        }
    }
    orfs
}

/// Synonymous codons (base-code triples) for each residue code, derived
/// from [`CODON_TABLE`] at first use.
fn codons_for(residue: u8) -> Vec<[u8; 3]> {
    let letter = crate::alphabet::code_to_letter(residue);
    let mut out = Vec::new();
    for idx in 0..64u8 {
        if CODON_TABLE[idx as usize] == letter {
            out.push([idx / 16, (idx / 4) % 4, idx % 4]);
        }
    }
    out
}

/// Embed a protein into DNA by choosing a random synonymous codon per
/// residue. The result translates back to exactly `protein` in frame 0.
pub fn reverse_translate<R: Rng + ?Sized>(rng: &mut R, protein: &[u8]) -> Vec<u8> {
    let mut dna = Vec::with_capacity(protein.len() * 3);
    for &res in protein {
        let options = codons_for(res);
        let c = options[rng.gen_range(0..options.len())];
        dna.extend_from_slice(&c);
    }
    dna
}

/// Random DNA of `len` bases (uniform).
pub fn random_dna<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(0..4u8)).collect()
}

/// Render base codes as an ASCII `ACGT` string.
pub fn dna_to_ascii(dna: &[u8]) -> Vec<u8> {
    dna.iter().map(|&b| BASES[b as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dna(ascii: &[u8]) -> Vec<u8> {
        ascii.iter().map(|&b| base_code(b).unwrap()).collect()
    }

    #[test]
    fn codon_table_well_formed() {
        let stops = CODON_TABLE.iter().filter(|&&c| c == b'*').count();
        assert_eq!(stops, 3, "TAA, TAG, TGA");
        for &c in &CODON_TABLE {
            assert!(c == b'*' || letter_to_code(c).is_some(), "{}", c as char);
        }
        // Spot checks of the standard code.
        assert_eq!(
            translate_codon(0, 3, 2),
            Some(letter_to_code(b'M').unwrap())
        ); // ATG
        assert_eq!(
            translate_codon(3, 2, 2),
            Some(letter_to_code(b'W').unwrap())
        ); // TGG
        assert_eq!(translate_codon(3, 0, 0), None); // TAA
        assert_eq!(translate_codon(3, 2, 0), None); // TGA
        assert_eq!(translate_codon(3, 0, 2), None); // TAG
    }

    #[test]
    fn reverse_complement_involution() {
        let d = dna(b"ACGTTGCA");
        assert_eq!(reverse_complement(&reverse_complement(&d)), d);
        assert_eq!(
            dna_to_ascii(&reverse_complement(&dna(b"AACG"))),
            b"CGTT".to_vec()
        );
    }

    #[test]
    fn orf_found_in_forward_frame_zero() {
        // ATG AAA TGG TAA -> "MKW" then stop.
        let d = dna(b"ATGAAATGGTAA");
        let orfs = six_frame_orfs(&d, 3);
        let f0: Vec<_> = orfs.iter().filter(|o| o.frame == 0).collect();
        assert_eq!(f0.len(), 1);
        assert_eq!(f0[0].protein, encode(b"MKW").unwrap());
        assert_eq!(f0[0].start, 0);
    }

    #[test]
    fn orf_found_on_reverse_strand() {
        // Reverse complement of ATGAAATGG is CCATTTCAT; embed it so only
        // the reverse strand holds the peptide.
        let fwd = dna(b"ATGAAATGGACG");
        let rc = reverse_complement(&fwd);
        let orfs = six_frame_orfs(&rc, 4);
        let found = orfs
            .iter()
            .any(|o| o.frame >= 3 && o.protein == encode(b"MKWT").unwrap());
        assert!(found, "reverse-strand ORF missing: {orfs:?}");
    }

    #[test]
    fn stop_codons_split_orfs() {
        // Two 3-codon stretches split by TAA.
        let d = dna(b"AAAAAAAAATAAGGGGGGGGG");
        let orfs = six_frame_orfs(&d, 3);
        let f0: Vec<_> = orfs.iter().filter(|o| o.frame == 0).collect();
        assert_eq!(f0.len(), 2);
        assert_eq!(f0[0].protein, encode(b"KKK").unwrap());
        assert_eq!(f0[1].protein, encode(b"GGG").unwrap());
    }

    #[test]
    fn min_len_filters() {
        let d = dna(b"ATGAAATGGTAA");
        assert!(six_frame_orfs(&d, 4).iter().all(|o| o.frame != 0));
        assert!(six_frame_orfs(&d, 3).iter().any(|o| o.frame == 0));
    }

    #[test]
    fn reverse_translate_roundtrips() {
        let mut rng = StdRng::seed_from_u64(5);
        let protein = encode(b"MKVLAWGYACDEFGHIKLNPQRSTVWY").unwrap();
        for _ in 0..10 {
            let d = reverse_translate(&mut rng, &protein);
            assert_eq!(d.len(), protein.len() * 3);
            let back: Vec<u8> = d
                .chunks(3)
                .map(|c| translate_codon(c[0], c[1], c[2]).expect("no stops inside"))
                .collect();
            assert_eq!(back, protein);
        }
    }

    #[test]
    fn every_residue_has_a_codon() {
        for res in 0..20u8 {
            assert!(!codons_for(res).is_empty(), "residue {res}");
        }
        // Codon counts sum to 61 (64 minus 3 stops).
        let total: usize = (0..20u8).map(|r| codons_for(r).len()).sum();
        assert_eq!(total, 61);
    }

    #[test]
    fn random_fragment_orfs_are_stop_free() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = random_dna(&mut rng, 600);
        for orf in six_frame_orfs(&d, 10) {
            assert!(orf.protein.len() >= 10);
            assert!(orf.protein.iter().all(|&r| r < 20));
        }
    }

    #[test]
    fn planted_protein_recovered_from_simulated_read() {
        // End-to-end: protein -> DNA -> embed in a read -> six-frame scan
        // recovers a superstring of the protein.
        let mut rng = StdRng::seed_from_u64(11);
        let protein = encode(b"MKVLAWGYACDEFGHIKLMNPQRSTVWYMKVLAWGY").unwrap();
        let coding = reverse_translate(&mut rng, &protein);
        let mut read = random_dna(&mut rng, 60);
        read.extend_from_slice(&coding);
        read.extend(random_dna(&mut rng, 60));
        let orfs = six_frame_orfs(&read, protein.len());
        let found = orfs.iter().any(|o| {
            o.protein
                .windows(protein.len())
                .any(|w| w == protein.as_slice())
        });
        assert!(found, "planted protein not recovered");
    }
}
