//! Protein family model: an ancestral sequence plus derived members.
//!
//! A family is generated in two tiers, mirroring the structure the paper's
//! evaluation depends on:
//!
//! * **core members** — moderate divergence from the ancestor; any two cores
//!   are detectably homologous, so they form a dense subgraph that the
//!   Shingling heuristic should recover ("core sets" of protein families).
//! * **fringe members** — high divergence; related to the family (and so part
//!   of the *benchmark* partition) but often undetectable by
//!   sequence–sequence matching, reproducing the paper's high-PPV / low-SE
//!   outcome for both gpClust and the GOS baseline (Table III).

use crate::alphabet::BackgroundSampler;
use crate::mutate::MutationModel;
use crate::sequence::{Protein, SeqId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters for generating one family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyConfig {
    /// Number of members (core + fringe).
    pub size: usize,
    /// Fraction of members that are fringe (loosely related).
    pub fringe_frac: f64,
    /// Length of the ancestral sequence (residues).
    pub ancestor_len: usize,
    /// Number of subfamilies (≤ 1 disables subfamily structure).
    ///
    /// Real protein families are unions of dense *subfamilies*: members
    /// within a subfamily are highly similar, members across subfamilies
    /// only moderately so. This is the structure that trips the GOS
    /// k-neighbor heuristic in the paper's §IV-D — it chains the dense
    /// subfamilies into one loosely-connected cluster — while Shingling
    /// reports the tight cores separately.
    pub n_subfamilies: usize,
    /// Mutation model deriving each subfamily's sub-ancestor from the
    /// family ancestor (used only when `n_subfamilies > 1`).
    pub subancestor_model: MutationModel,
    /// Mutation model for core members.
    pub core_model: MutationModel,
    /// Mutation model for fringe members.
    pub fringe_model: MutationModel,
}

impl FamilyConfig {
    /// Defaults for a family of `size` members with typical ORF length.
    ///
    /// Metagenomic ORFs are a few hundred bp, i.e. on the order of 100
    /// residues; we draw the ancestor length elsewhere, this sets the shape.
    pub fn with_size(size: usize, ancestor_len: usize) -> Self {
        FamilyConfig {
            size,
            fringe_frac: 0.3,
            ancestor_len,
            n_subfamilies: 1,
            subancestor_model: FamilyConfig::subancestor_default(),
            core_model: MutationModel::family_default(),
            fringe_model: MutationModel::fringe_default(),
        }
    }

    /// Default ancestor → sub-ancestor divergence: family-level
    /// substitutions, but no fragmentation (sub-ancestors are full-length
    /// prototypes, not observed reads).
    pub fn subancestor_default() -> MutationModel {
        MutationModel {
            fragment_prob: 0.0,
            ..MutationModel::family_default()
        }
    }
}

/// A generated family: members and which of them are core.
#[derive(Debug, Clone)]
pub struct Family {
    /// Family index within the dataset.
    pub family_id: u32,
    /// Generated member sequences (ids assigned by the caller's range).
    pub members: Vec<Protein>,
    /// `is_core[i]` is true if `members[i]` is a core (low-divergence) member.
    pub is_core: Vec<bool>,
    /// Subfamily index of each member (all zero when subfamilies disabled).
    pub subfamily: Vec<u16>,
}

/// Generates families from [`FamilyConfig`]s.
pub struct FamilyGenerator {
    background: BackgroundSampler,
}

impl FamilyGenerator {
    /// Create a generator.
    pub fn new() -> Self {
        FamilyGenerator {
            background: BackgroundSampler::new(),
        }
    }

    /// Generate one family. Member ids are assigned densely starting at
    /// `first_id`; labels are `fam{family_id:05}_{c|f}{index}`.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        family_id: u32,
        first_id: SeqId,
        config: &FamilyConfig,
    ) -> Family {
        let ancestor = self.background.sample_seq(rng, config.ancestor_len);
        let n_fringe = ((config.size as f64) * config.fringe_frac).round() as usize;
        let n_fringe = n_fringe.min(config.size.saturating_sub(1));
        let n_core = config.size - n_fringe;

        // Sub-ancestors: moderately diverged prototypes within the family.
        let n_sub = config.n_subfamilies.max(1).min(config.size.max(1));
        let subancestors: Vec<Vec<u8>> = if n_sub > 1 {
            (0..n_sub)
                .map(|_| {
                    config
                        .subancestor_model
                        .mutate(rng, &ancestor, &self.background)
                })
                .collect()
        } else {
            vec![ancestor]
        };

        let mut members = Vec::with_capacity(config.size);
        let mut is_core = Vec::with_capacity(config.size);
        let mut subfamily = Vec::with_capacity(config.size);
        for i in 0..config.size {
            let core = i < n_core;
            let sub = i % n_sub;
            let model = if core {
                &config.core_model
            } else {
                &config.fringe_model
            };
            let residues = model.mutate(rng, &subancestors[sub], &self.background);
            let tag = if core { 'c' } else { 'f' };
            let label = format!("fam{family_id:05}_s{sub}_{tag}{i}");
            members.push(Protein::new(first_id + i as SeqId, label, residues));
            is_core.push(core);
            subfamily.push(sub as u16);
        }
        Family {
            family_id,
            members,
            is_core,
            subfamily,
        }
    }
}

impl Default for FamilyGenerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_size_and_ids() {
        let mut rng = StdRng::seed_from_u64(11);
        let gen = FamilyGenerator::new();
        let cfg = FamilyConfig::with_size(10, 150);
        let fam = gen.generate(&mut rng, 3, 100, &cfg);
        assert_eq!(fam.members.len(), 10);
        assert_eq!(fam.is_core.len(), 10);
        for (i, m) in fam.members.iter().enumerate() {
            assert_eq!(m.id, 100 + i as u32);
            assert!(m.label.starts_with("fam00003_"));
        }
    }

    #[test]
    fn fringe_fraction_respected() {
        let mut rng = StdRng::seed_from_u64(12);
        let gen = FamilyGenerator::new();
        let mut cfg = FamilyConfig::with_size(20, 150);
        cfg.fringe_frac = 0.25;
        let fam = gen.generate(&mut rng, 0, 0, &cfg);
        let n_fringe = fam.is_core.iter().filter(|&&c| !c).count();
        assert_eq!(n_fringe, 5);
    }

    #[test]
    fn at_least_one_core_member() {
        let mut rng = StdRng::seed_from_u64(13);
        let gen = FamilyGenerator::new();
        let mut cfg = FamilyConfig::with_size(3, 100);
        cfg.fringe_frac = 1.0; // clamped: never all-fringe
        let fam = gen.generate(&mut rng, 0, 0, &cfg);
        assert!(fam.is_core.iter().any(|&c| c));
    }

    #[test]
    fn singleton_family_is_core_only() {
        let mut rng = StdRng::seed_from_u64(14);
        let gen = FamilyGenerator::new();
        let cfg = FamilyConfig::with_size(1, 100);
        let fam = gen.generate(&mut rng, 0, 0, &cfg);
        assert_eq!(fam.members.len(), 1);
        assert_eq!(fam.is_core, vec![true]);
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = FamilyGenerator::new();
        let cfg = FamilyConfig::with_size(8, 120);
        let f1 = gen.generate(&mut StdRng::seed_from_u64(42), 0, 0, &cfg);
        let f2 = gen.generate(&mut StdRng::seed_from_u64(42), 0, 0, &cfg);
        assert_eq!(f1.members, f2.members);
    }

    #[test]
    fn members_have_nonzero_length() {
        let mut rng = StdRng::seed_from_u64(15);
        let gen = FamilyGenerator::new();
        let cfg = FamilyConfig::with_size(30, 200);
        let fam = gen.generate(&mut rng, 0, 0, &cfg);
        assert!(fam.members.iter().all(|m| !m.is_empty()));
    }
}
