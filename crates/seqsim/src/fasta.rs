//! FASTA serialization of protein datasets.
//!
//! The gpClust pipeline begins with disk I/O ("CPU loads graph from disk" in
//! Algorithm 2); in our reproduction the sequence data also lives on disk in
//! FASTA form, and the time spent here feeds the *Disk I/O* column of
//! Table I. The format is the plain two-line-per-record FASTA dialect with
//! optional line wrapping on write.

use crate::alphabet;
use crate::sequence::{Protein, SeqId};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Width at which sequence lines are wrapped on write.
pub const LINE_WIDTH: usize = 70;

/// Write proteins to a FASTA stream, wrapping sequence lines at
/// [`LINE_WIDTH`] columns.
pub fn write<W: Write>(writer: W, proteins: &[Protein]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for p in proteins {
        writeln!(w, ">{}", p.label)?;
        let ascii = p.to_ascii();
        for chunk in ascii.chunks(LINE_WIDTH) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
    }
    w.flush()
}

/// Write proteins to a FASTA file at `path`.
pub fn write_file<P: AsRef<Path>>(path: P, proteins: &[Protein]) -> io::Result<()> {
    write(std::fs::File::create(path)?, proteins)
}

/// Errors arising while parsing FASTA input.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A sequence line appeared before any `>` header.
    MissingHeader { line: usize },
    /// A sequence line contained a byte that is not a residue letter.
    InvalidResidue { line: usize, byte: u8 },
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
            FastaError::MissingHeader { line } => {
                write!(f, "line {line}: sequence data before first '>' header")
            }
            FastaError::InvalidResidue { line, byte } => {
                write!(f, "line {line}: invalid residue byte {:?}", *byte as char)
            }
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Read proteins from a FASTA stream. Ids are assigned densely in file order
/// starting from `first_id`.
pub fn read<R: Read>(reader: R, first_id: SeqId) -> Result<Vec<Protein>, FastaError> {
    let r = BufReader::new(reader);
    let mut proteins: Vec<Protein> = Vec::new();
    let mut label: Option<String> = None;
    let mut residues: Vec<u8> = Vec::new();
    let mut next_id = first_id;

    let mut flush = |label: &mut Option<String>, residues: &mut Vec<u8>, next_id: &mut SeqId| {
        if let Some(l) = label.take() {
            proteins_push(&mut proteins, *next_id, l, std::mem::take(residues));
            *next_id += 1;
        }
    };

    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            flush(&mut label, &mut residues, &mut next_id);
            label = Some(header.trim().to_string());
        } else {
            if label.is_none() {
                return Err(FastaError::MissingHeader { line: lineno + 1 });
            }
            for &b in line.as_bytes() {
                match alphabet::letter_to_code(b) {
                    Some(code) => residues.push(code),
                    None => {
                        return Err(FastaError::InvalidResidue {
                            line: lineno + 1,
                            byte: b,
                        })
                    }
                }
            }
        }
    }
    flush(&mut label, &mut residues, &mut next_id);
    Ok(proteins)
}

fn proteins_push(proteins: &mut Vec<Protein>, id: SeqId, label: String, residues: Vec<u8>) {
    proteins.push(Protein::new(id, label, residues));
}

/// Read proteins from a FASTA file at `path`, assigning ids from 0.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Vec<Protein>, FastaError> {
    read(std::fs::File::open(path)?, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Protein> {
        vec![
            Protein::from_ascii(0, "alpha", b"MKVLAW").unwrap(),
            Protein::from_ascii(1, "beta descr", b"ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY")
                .unwrap(),
            Protein::from_ascii(2, "gamma", b"GG").unwrap(),
        ]
    }

    #[test]
    fn roundtrip_through_memory() {
        let proteins = sample();
        let mut buf = Vec::new();
        write(&mut buf, &proteins).unwrap();
        let back = read(&buf[..], 0).unwrap();
        assert_eq!(back, proteins);
    }

    #[test]
    fn wraps_long_lines() {
        let long = Protein::new(0, "long", vec![0u8; 200]);
        let mut buf = Vec::new();
        write(&mut buf, &[long]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let max = text.lines().map(str::len).max().unwrap();
        assert!(max <= LINE_WIDTH);
    }

    #[test]
    fn read_handles_multiline_records() {
        let text = b">x\nACD\nEFG\n\n>y\nKL\n";
        let ps = read(&text[..], 10).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].id, 10);
        assert_eq!(ps[1].id, 11);
        assert_eq!(ps[0].to_ascii(), b"ACDEFG".to_vec());
        assert_eq!(ps[1].to_ascii(), b"KL".to_vec());
    }

    #[test]
    fn read_rejects_headerless_sequence() {
        let err = read(&b"ACD\n"[..], 0).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn read_rejects_invalid_residue() {
        let err = read(&b">x\nACB\n"[..], 0).unwrap_err();
        assert!(matches!(
            err,
            FastaError::InvalidResidue {
                line: 2,
                byte: b'B'
            }
        ));
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("gpclust_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.faa");
        let proteins = sample();
        write_file(&path, &proteins).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, proteins);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input_is_empty_dataset() {
        assert!(read(&b""[..], 0).unwrap().is_empty());
    }
}
