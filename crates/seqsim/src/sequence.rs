//! Protein sequence representation.
//!
//! A [`Protein`] is an identifier plus a vector of residue codes (`0..20`,
//! see [`crate::alphabet`]). Identifiers are dense `u32` indices — the same
//! ids become vertex ids in the homology graph, so the mapping between
//! sequences, graph vertices and cluster members is the identity.

use crate::alphabet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense sequence identifier; doubles as the homology-graph vertex id.
pub type SeqId = u32;

/// A protein (ORF) sequence: id, optional free-text label, residue codes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Protein {
    /// Dense id, unique within a dataset.
    pub id: SeqId,
    /// FASTA header label (e.g. `"fam00042_m3"` or `"noise_917"`).
    pub label: String,
    /// Residue codes, each in `0..20`.
    pub residues: Vec<u8>,
}

impl Protein {
    /// Create a protein from residue codes.
    ///
    /// # Panics
    /// Panics (debug only) if any residue code is out of range.
    pub fn new(id: SeqId, label: impl Into<String>, residues: Vec<u8>) -> Self {
        debug_assert!(
            residues
                .iter()
                .all(|&r| (r as usize) < alphabet::ALPHABET_SIZE),
            "residue code out of range"
        );
        Protein {
            id,
            label: label.into(),
            residues,
        }
    }

    /// Create a protein by encoding an ASCII string such as `"MKVLA..."`.
    ///
    /// Returns `None` if the string contains invalid residue letters.
    pub fn from_ascii(id: SeqId, label: impl Into<String>, ascii: &[u8]) -> Option<Self> {
        Some(Protein::new(id, label, alphabet::encode(ascii)?))
    }

    /// Sequence length in residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True if the sequence has no residues.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// ASCII rendering of the residues.
    pub fn to_ascii(&self) -> Vec<u8> {
        alphabet::decode(&self.residues)
    }
}

impl fmt::Display for Protein {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            ">{} ({} aa)\n{}",
            self.label,
            self.len(),
            String::from_utf8_lossy(&self.to_ascii())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ascii_roundtrip() {
        let p = Protein::from_ascii(3, "test", b"MKVLAW").unwrap();
        assert_eq!(p.id, 3);
        assert_eq!(p.len(), 6);
        assert_eq!(p.to_ascii(), b"MKVLAW".to_vec());
    }

    #[test]
    fn from_ascii_rejects_bad_letters() {
        assert!(Protein::from_ascii(0, "bad", b"MKXB1").is_none());
    }

    #[test]
    fn display_contains_label_and_sequence() {
        let p = Protein::from_ascii(0, "fam1_m0", b"ACDE").unwrap();
        let s = p.to_string();
        assert!(s.contains("fam1_m0"));
        assert!(s.contains("ACDE"));
    }

    #[test]
    fn empty_protein() {
        let p = Protein::new(0, "empty", vec![]);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }
}
