//! Summary statistics over generated datasets.
//!
//! Used by the benchmark harness to report the generated dataset's shape
//! next to the paper's dataset description (20K / 2M sequences, singleton
//! counts, family-size tails) in EXPERIMENTS.md.

use crate::metagenome::Metagenome;
use serde::{Deserialize, Serialize};

/// Mean and (population) standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanSd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub sd: f64,
}

impl MeanSd {
    /// Compute mean ± sd of `values`. Returns zeros for an empty sample.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut n = 0usize;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for v in values {
            n += 1;
            sum += v;
            sumsq += v * v;
        }
        if n == 0 {
            return MeanSd { mean: 0.0, sd: 0.0 };
        }
        let mean = sum / n as f64;
        let var = (sumsq / n as f64 - mean * mean).max(0.0);
        MeanSd {
            mean,
            sd: var.sqrt(),
        }
    }
}

impl std::fmt::Display for MeanSd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} ± {:.1}", self.mean, self.sd)
    }
}

/// Dataset-level summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Total sequences.
    pub n_sequences: usize,
    /// Noise (family-less) sequences.
    pub n_noise: usize,
    /// Number of planted families.
    pub n_families: usize,
    /// Family size distribution.
    pub family_size: MeanSd,
    /// Largest family.
    pub max_family_size: usize,
    /// ORF length distribution.
    pub orf_len: MeanSd,
}

impl DatasetStats {
    /// Compute statistics of a generated metagenome.
    pub fn of(mg: &Metagenome) -> Self {
        let sizes = mg.family_sizes();
        DatasetStats {
            n_sequences: mg.len(),
            n_noise: mg.n_noise(),
            n_families: sizes.len(),
            family_size: MeanSd::of(sizes.iter().map(|&s| s as f64)),
            max_family_size: sizes.iter().copied().max().unwrap_or(0),
            orf_len: MeanSd::of(mg.proteins.iter().map(|p| p.len() as f64)),
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "sequences:        {}", self.n_sequences)?;
        writeln!(f, "noise singletons: {}", self.n_noise)?;
        writeln!(f, "families:         {}", self.n_families)?;
        writeln!(
            f,
            "family size:      {} (max {})",
            self.family_size, self.max_family_size
        )?;
        write!(f, "ORF length:       {}", self.orf_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metagenome::MetagenomeConfig;

    #[test]
    fn mean_sd_basics() {
        let ms = MeanSd::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((ms.mean - 5.0).abs() < 1e-12);
        assert!((ms.sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_sd_empty() {
        let ms = MeanSd::of(std::iter::empty());
        assert_eq!(ms.mean, 0.0);
        assert_eq!(ms.sd, 0.0);
    }

    #[test]
    fn mean_sd_single() {
        let ms = MeanSd::of([3.5]);
        assert_eq!(ms.mean, 3.5);
        assert_eq!(ms.sd, 0.0);
    }

    #[test]
    fn dataset_stats_consistent() {
        let mg = Metagenome::generate(&MetagenomeConfig::tiny(800, 5));
        let st = DatasetStats::of(&mg);
        assert_eq!(st.n_sequences, 800);
        assert_eq!(st.n_noise, mg.n_noise());
        assert_eq!(st.n_families, mg.n_families as usize);
        assert!(st.orf_len.mean > 30.0);
        assert!(st.max_family_size >= st.family_size.mean as usize);
        let display = st.to_string();
        assert!(display.contains("families"));
    }
}
