//! Mutation model used to derive family members from an ancestral sequence.
//!
//! Members of a protein family diverge from their ancestor by point
//! substitutions, short insertions/deletions, and — because metagenomic ORFs
//! come from shotgun-fragmented reads of only a few hundred bp — truncation
//! to a fragment of the full protein. The model here captures all three, with
//! rates expressed per residue so that divergence composes naturally with
//! sequence length.
//!
//! Substitutions are *conservative with probability `conservative_frac`*:
//! a residue then mutates within its physico-chemical group (aliphatic,
//! aromatic, polar, positive, negative, small), which mimics the
//! BLOSUM-biased substitution patterns real families exhibit and keeps
//! mutated members alignable to each other, not just to the ancestor.

use crate::alphabet::{letter_to_code, BackgroundSampler, ALPHABET_SIZE};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Physico-chemical residue groups used for conservative substitutions.
const GROUPS: &[&[u8]] = &[
    b"ILVM", // aliphatic / hydrophobic
    b"FWY",  // aromatic
    b"STNQ", // polar uncharged
    b"KRH",  // positively charged
    b"DE",   // negatively charged
    b"AGPC", // small / special
];

/// Per-member mutation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MutationModel {
    /// Probability that any given residue is substituted.
    pub substitution_rate: f64,
    /// Probability, at each residue boundary, of starting an indel event.
    pub indel_rate: f64,
    /// Mean indel length (geometric distribution).
    pub mean_indel_len: f64,
    /// Of substitutions, the fraction drawn from the residue's
    /// physico-chemical group rather than from the background distribution.
    pub conservative_frac: f64,
    /// Probability that the derived member is a fragment (truncated ORF).
    pub fragment_prob: f64,
    /// Minimum fraction of the ancestor retained when fragmenting.
    pub min_fragment_frac: f64,
}

impl MutationModel {
    /// A model tuned so that typical members stay in the 40–80 % identity
    /// band where Smith–Waterman homology detection is reliable.
    pub fn family_default() -> Self {
        MutationModel {
            substitution_rate: 0.18,
            indel_rate: 0.01,
            mean_indel_len: 2.0,
            conservative_frac: 0.6,
            fragment_prob: 0.25,
            min_fragment_frac: 0.55,
        }
    }

    /// A high-divergence model for the loose "fringe" members of a family —
    /// sequences a profile-based method would recruit but sequence–sequence
    /// matching often misses. Used to reproduce the paper's high-PPV /
    /// low-SE regime (reported clusters are *core sets* of families).
    pub fn fringe_default() -> Self {
        MutationModel {
            substitution_rate: 0.58,
            indel_rate: 0.04,
            mean_indel_len: 3.0,
            conservative_frac: 0.45,
            fragment_prob: 0.55,
            min_fragment_frac: 0.35,
        }
    }

    /// Identity model: no mutations at all.
    pub fn none() -> Self {
        MutationModel {
            substitution_rate: 0.0,
            indel_rate: 0.0,
            mean_indel_len: 0.0,
            conservative_frac: 0.0,
            fragment_prob: 0.0,
            min_fragment_frac: 1.0,
        }
    }

    /// Scale substitution and indel rates by `factor`, clamping into [0, 0.95].
    pub fn scaled(&self, factor: f64) -> Self {
        let mut m = *self;
        m.substitution_rate = (m.substitution_rate * factor).clamp(0.0, 0.95);
        m.indel_rate = (m.indel_rate * factor).clamp(0.0, 0.5);
        m
    }

    /// Derive a mutated copy of `ancestor` (residue codes).
    pub fn mutate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        ancestor: &[u8],
        background: &BackgroundSampler,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(ancestor.len() + 8);
        for &res in ancestor {
            // Indel event before this residue: insertion or deletion.
            if self.indel_rate > 0.0 && rng.gen_bool(self.indel_rate) {
                let len = sample_geometric(rng, self.mean_indel_len);
                if rng.gen_bool(0.5) {
                    for _ in 0..len {
                        out.push(background.sample(rng));
                    }
                } else {
                    // Deletion: skip this residue with probability; longer
                    // deletions are realized by repeated events on following
                    // residues, which keeps the loop simple and unbiased.
                    continue;
                }
            }
            if self.substitution_rate > 0.0 && rng.gen_bool(self.substitution_rate) {
                out.push(self.substitute(rng, res, background));
            } else {
                out.push(res);
            }
        }
        if self.fragment_prob > 0.0 && !out.is_empty() && rng.gen_bool(self.fragment_prob) {
            self.fragment(rng, &mut out);
        }
        out
    }

    /// Substitute one residue, conservatively or from the background.
    fn substitute<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        res: u8,
        background: &BackgroundSampler,
    ) -> u8 {
        if rng.gen_bool(self.conservative_frac) {
            if let Some(group) = group_of(res) {
                if group.len() > 1 {
                    loop {
                        let cand = group[rng.gen_range(0..group.len())];
                        if cand != res {
                            return cand;
                        }
                    }
                }
            }
        }
        // Non-conservative: background draw, retried once to avoid identity.
        let cand = background.sample(rng);
        if cand != res {
            cand
        } else {
            (cand + 1 + rng.gen_range(0..(ALPHABET_SIZE as u8 - 1))) % ALPHABET_SIZE as u8
        }
    }

    /// Truncate `seq` in place to a random window, keeping at least
    /// `min_fragment_frac` of its length.
    fn fragment<R: Rng + ?Sized>(&self, rng: &mut R, seq: &mut Vec<u8>) {
        let n = seq.len();
        let min_len = ((n as f64 * self.min_fragment_frac).ceil() as usize).max(1);
        if min_len >= n {
            return;
        }
        let keep = rng.gen_range(min_len..=n);
        let start = rng.gen_range(0..=n - keep);
        seq.drain(..start);
        seq.truncate(keep);
    }
}

/// Group (as residue codes) that `res` belongs to, if any.
fn group_of(res: u8) -> Option<Vec<u8>> {
    for g in GROUPS {
        let codes: Vec<u8> = g.iter().map(|&l| letter_to_code(l).unwrap()).collect();
        if codes.contains(&res) {
            return Some(codes);
        }
    }
    None
}

/// Sample a geometric length with the given mean (at least 1).
fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let mut len = 1;
    while len < 64 && !rng.gen_bool(p) {
        len += 1;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ancestor(len: usize, rng: &mut StdRng) -> Vec<u8> {
        BackgroundSampler::new().sample_seq(rng, len)
    }

    /// Fraction of positions equal under a naive positional comparison.
    fn naive_identity(a: &[u8], b: &[u8]) -> f64 {
        let n = a.len().min(b.len());
        if n == 0 {
            return 0.0;
        }
        let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
        same as f64 / n as f64
    }

    #[test]
    fn none_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let anc = ancestor(300, &mut rng);
        let bg = BackgroundSampler::new();
        let m = MutationModel::none().mutate(&mut rng, &anc, &bg);
        assert_eq!(m, anc);
    }

    #[test]
    fn family_model_keeps_high_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let bg = BackgroundSampler::new();
        let mut model = MutationModel::family_default();
        model.fragment_prob = 0.0;
        model.indel_rate = 0.0; // keep positions comparable
        let anc = ancestor(500, &mut rng);
        let m = model.mutate(&mut rng, &anc, &bg);
        let id = naive_identity(&anc, &m);
        assert!(id > 0.70 && id < 0.95, "identity = {id}");
    }

    #[test]
    fn fringe_model_diverges_more_than_family_model() {
        let mut rng = StdRng::seed_from_u64(3);
        let bg = BackgroundSampler::new();
        let anc = ancestor(500, &mut rng);
        let mut fam = MutationModel::family_default();
        let mut fringe = MutationModel::fringe_default();
        fam.fragment_prob = 0.0;
        fam.indel_rate = 0.0;
        fringe.fragment_prob = 0.0;
        fringe.indel_rate = 0.0;
        let fam_id = naive_identity(&anc, &fam.mutate(&mut rng, &anc, &bg));
        let fringe_id = naive_identity(&anc, &fringe.mutate(&mut rng, &anc, &bg));
        assert!(fringe_id < fam_id, "fringe {fringe_id} !< family {fam_id}");
    }

    #[test]
    fn fragmenting_respects_min_fraction() {
        let mut rng = StdRng::seed_from_u64(4);
        let bg = BackgroundSampler::new();
        let model = MutationModel {
            substitution_rate: 0.0,
            indel_rate: 0.0,
            mean_indel_len: 0.0,
            conservative_frac: 0.0,
            fragment_prob: 1.0,
            min_fragment_frac: 0.5,
        };
        let anc = ancestor(200, &mut rng);
        for _ in 0..50 {
            let m = model.mutate(&mut rng, &anc, &bg);
            assert!(m.len() >= 100, "fragment too short: {}", m.len());
            assert!(m.len() <= 200);
        }
    }

    #[test]
    fn substitutions_stay_in_alphabet() {
        let mut rng = StdRng::seed_from_u64(5);
        let bg = BackgroundSampler::new();
        let model = MutationModel::fringe_default();
        let anc = ancestor(300, &mut rng);
        for _ in 0..20 {
            let m = model.mutate(&mut rng, &anc, &bg);
            assert!(m.iter().all(|&r| (r as usize) < ALPHABET_SIZE));
        }
    }

    #[test]
    fn conservative_substitution_changes_residue() {
        let mut rng = StdRng::seed_from_u64(6);
        let bg = BackgroundSampler::new();
        let model = MutationModel {
            substitution_rate: 1.0,
            indel_rate: 0.0,
            mean_indel_len: 0.0,
            conservative_frac: 1.0,
            fragment_prob: 0.0,
            min_fragment_frac: 1.0,
        };
        let anc = ancestor(200, &mut rng);
        let m = model.mutate(&mut rng, &anc, &bg);
        let same = anc.iter().zip(&m).filter(|(a, b)| a == b).count();
        assert_eq!(same, 0, "all residues should substitute");
    }

    #[test]
    fn geometric_mean_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_geometric(&mut rng, 3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn groups_cover_whole_alphabet() {
        let mut covered = [false; ALPHABET_SIZE];
        for g in GROUPS {
            for &l in *g {
                covered[letter_to_code(l).unwrap() as usize] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "every residue must be in a group"
        );
    }
}
