//! Property tests for the sequence substrate.

use gpclust_seqsim::alphabet::BackgroundSampler;
use gpclust_seqsim::dna;
use gpclust_seqsim::fasta;
use gpclust_seqsim::mutate::MutationModel;
use gpclust_seqsim::Protein;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_residues(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..20, 0..max_len)
}

fn arb_label() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_ .-]{1,30}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fasta_roundtrip_arbitrary_proteins(
        records in proptest::collection::vec((arb_label(), arb_residues(200)), 0..12),
    ) {
        let proteins: Vec<Protein> = records
            .into_iter()
            .enumerate()
            .map(|(i, (label, res))| Protein::new(i as u32, label.trim().to_string(), res))
            .collect();
        // Empty-sequence records survive; labels are trimmed on read.
        let mut buf = Vec::new();
        fasta::write(&mut buf, &proteins).unwrap();
        let back = fasta::read(&buf[..], 0).unwrap();
        prop_assert_eq!(back, proteins);
    }

    #[test]
    fn mutation_output_is_valid_protein(
        ancestor in arb_residues(300),
        sub in 0.0f64..0.9,
        indel in 0.0f64..0.2,
        frag in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let model = MutationModel {
            substitution_rate: sub,
            indel_rate: indel,
            mean_indel_len: 2.0,
            conservative_frac: 0.5,
            fragment_prob: frag,
            min_fragment_frac: 0.4,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let bg = BackgroundSampler::new();
        let m = model.mutate(&mut rng, &ancestor, &bg);
        prop_assert!(m.iter().all(|&r| r < 20));
        // Fragmentation never grows the sequence beyond indel expansion
        // bounds; sanity-limit at 3x.
        prop_assert!(m.len() <= ancestor.len() * 3 + 64);
    }

    #[test]
    fn reverse_complement_is_involution(d in proptest::collection::vec(0u8..4, 0..300)) {
        prop_assert_eq!(dna::reverse_complement(&dna::reverse_complement(&d)), d);
    }

    #[test]
    fn orfs_are_stop_free_and_long_enough(
        d in proptest::collection::vec(0u8..4, 0..600),
        min_len in 1usize..20,
    ) {
        for orf in dna::six_frame_orfs(&d, min_len) {
            prop_assert!(orf.protein.len() >= min_len);
            prop_assert!(orf.protein.iter().all(|&r| r < 20));
            prop_assert!(orf.frame < 6);
        }
    }

    #[test]
    fn reverse_translate_then_translate_identity(
        protein in arb_residues(150),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = dna::reverse_translate(&mut rng, &protein);
        prop_assert_eq!(d.len(), protein.len() * 3);
        let back: Vec<u8> = d
            .chunks(3)
            .map(|c| dna::translate_codon(c[0], c[1], c[2]).expect("no stops"))
            .collect();
        prop_assert_eq!(back, protein);
    }
}
