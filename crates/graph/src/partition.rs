//! Cluster partitions and their statistics.
//!
//! A [`Partition`] assigns each vertex to at most one group — the output
//! shape of gpClust's Phase III (union–find variant), of the GOS k-neighbor
//! baseline, and of the planted benchmark. It carries the statistics the
//! paper's evaluation reports: group counts and sizes (Table IV),
//! intra-cluster density per Equation 6, and the group-size histogram bins
//! of Figure 5.

use crate::csr::Csr;
use crate::stats::MeanSd;
use crate::unionfind::UnionFind;
use crate::VertexId;
use serde::{Deserialize, Serialize};

/// The group-size bins used by Figure 5 of the paper.
pub const SIZE_BINS: [(usize, usize); 7] = [
    (20, 49),
    (50, 99),
    (100, 199),
    (200, 499),
    (500, 999),
    (1000, 2000),
    (2001, usize::MAX),
];

/// Human-readable labels for [`SIZE_BINS`].
pub const SIZE_BIN_LABELS: [&str; 7] = [
    "20-49",
    "50-99",
    "100-199",
    "200-499",
    "500-999",
    "1000-2000",
    ">2000",
];

/// A disjoint grouping of vertices; vertices may be unassigned.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    n_vertices: usize,
    membership: Vec<Option<u32>>,
    groups: Vec<Vec<VertexId>>,
}

impl Partition {
    /// Build from a membership array; group ids are compacted densely and
    /// renumbered by first appearance.
    pub fn from_membership(membership: Vec<Option<u32>>) -> Self {
        let n_vertices = membership.len();
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut groups: Vec<Vec<VertexId>> = Vec::new();
        let mut compact = vec![None; n_vertices];
        for (v, m) in membership.iter().enumerate() {
            if let Some(g) = m {
                let id = *remap.entry(*g).or_insert_with(|| {
                    groups.push(Vec::new());
                    (groups.len() - 1) as u32
                });
                groups[id as usize].push(v as VertexId);
                compact[v] = Some(id);
            }
        }
        Partition {
            n_vertices,
            membership: compact,
            groups,
        }
    }

    /// Build from a full labeling (every vertex assigned).
    pub fn from_labels(labels: &[u32]) -> Self {
        Partition::from_membership(labels.iter().map(|&l| Some(l)).collect())
    }

    /// Build from a union–find structure (each set becomes a group).
    pub fn from_union_find(uf: &mut UnionFind) -> Self {
        let (labels, _) = uf.labels();
        Partition::from_labels(&labels)
    }

    /// Every vertex in its own group.
    pub fn singletons(n: usize) -> Self {
        Partition::from_labels(&(0..n as u32).collect::<Vec<_>>())
    }

    /// Number of vertices in the universe (assigned or not).
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Members of group `g`, ascending.
    pub fn group(&self, g: usize) -> &[VertexId] {
        &self.groups[g]
    }

    /// All groups.
    pub fn groups(&self) -> &[Vec<VertexId>] {
        &self.groups
    }

    /// Group of vertex `v`, if assigned.
    #[inline]
    pub fn group_of(&self, v: VertexId) -> Option<u32> {
        self.membership[v as usize]
    }

    /// The membership array.
    pub fn membership(&self) -> &[Option<u32>] {
        &self.membership
    }

    /// Number of vertices assigned to some group.
    pub fn assigned_count(&self) -> usize {
        self.membership.iter().filter(|m| m.is_some()).count()
    }

    /// Group sizes.
    pub fn sizes(&self) -> Vec<usize> {
        self.groups.iter().map(Vec::len).collect()
    }

    /// Keep only groups with at least `min_size` members; smaller groups'
    /// vertices become unassigned. (The GOS study reports only clusters of
    /// size ≥ 20; Table III/IV comparisons apply the same cut.)
    pub fn filter_min_size(&self, min_size: usize) -> Partition {
        let mut membership = vec![None; self.n_vertices];
        for (g, members) in self.groups.iter().enumerate() {
            if members.len() >= min_size {
                for &v in members {
                    membership[v as usize] = Some(g as u32);
                }
            }
        }
        Partition::from_membership(membership)
    }

    /// Summary statistics over group sizes (Table IV row).
    pub fn size_stats(&self) -> PartitionStats {
        let sizes = self.sizes();
        PartitionStats {
            n_groups: sizes.len(),
            n_assigned: sizes.iter().sum(),
            largest: sizes.iter().copied().max().unwrap_or(0),
            size: MeanSd::of(sizes.iter().map(|&s| s as f64)),
        }
    }

    /// Per-group intra-connectivity density (Equation 6):
    /// `#(edges inside the group) / C(k, 2)`. Groups of size < 2 get 1.0
    /// (a single vertex is trivially fully connected).
    pub fn densities(&self, g: &Csr) -> Vec<f64> {
        let mut intra = vec![0usize; self.n_groups()];
        for (v, ns) in g.iter() {
            if let Some(gv) = self.group_of(v) {
                for &u in ns {
                    if u > v && self.group_of(u) == Some(gv) {
                        intra[gv as usize] += 1;
                    }
                }
            }
        }
        self.groups
            .iter()
            .zip(&intra)
            .map(|(members, &e)| {
                let k = members.len();
                if k < 2 {
                    1.0
                } else {
                    e as f64 / (k * (k - 1) / 2) as f64
                }
            })
            .collect()
    }

    /// Mean ± sd of [`Partition::densities`].
    pub fn density_stats(&self, g: &Csr) -> MeanSd {
        MeanSd::of(self.densities(g))
    }

    /// Histogram over [`SIZE_BINS`]: `(groups per bin, sequences per bin)` —
    /// the two panels of Figure 5.
    pub fn size_histogram(&self) -> ([usize; 7], [usize; 7]) {
        let mut groups = [0usize; 7];
        let mut seqs = [0usize; 7];
        for size in self.sizes() {
            if let Some(bin) = SIZE_BINS
                .iter()
                .position(|&(lo, hi)| size >= lo && size <= hi)
            {
                groups[bin] += 1;
                seqs[bin] += size;
            }
        }
        (groups, seqs)
    }
}

/// Group-size summary used in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Number of groups.
    pub n_groups: usize,
    /// Number of sequences included in any group.
    pub n_assigned: usize,
    /// Largest group size.
    pub largest: usize,
    /// Group size mean ± sd.
    pub size: MeanSd,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn partition() -> Partition {
        // groups: {0,1,2}, {3,4}, unassigned: {5}
        Partition::from_membership(vec![Some(7), Some(7), Some(7), Some(3), Some(3), None])
    }

    #[test]
    fn compacts_group_ids() {
        let p = partition();
        assert_eq!(p.n_groups(), 2);
        assert_eq!(p.group(0), &[0, 1, 2]);
        assert_eq!(p.group(1), &[3, 4]);
        assert_eq!(p.group_of(5), None);
        assert_eq!(p.assigned_count(), 5);
    }

    #[test]
    fn filter_min_size_unassigns_small_groups() {
        let p = partition().filter_min_size(3);
        assert_eq!(p.n_groups(), 1);
        assert_eq!(p.group_of(3), None);
        assert_eq!(p.group_of(0), Some(0));
        assert_eq!(p.assigned_count(), 3);
    }

    #[test]
    fn size_stats() {
        let st = partition().size_stats();
        assert_eq!(st.n_groups, 2);
        assert_eq!(st.n_assigned, 5);
        assert_eq!(st.largest, 3);
        assert!((st.size.mean - 2.5).abs() < 1e-12);
    }

    #[test]
    fn density_of_clique_is_one() {
        // group {0,1,2} is a triangle; group {3,4} has no edge.
        let mut el: EdgeList = [(0, 1), (1, 2), (0, 2)].into_iter().collect();
        let g = Csr::from_edges(6, &mut el);
        let p = partition();
        let d = p.densities(&g);
        assert_eq!(d.len(), 2);
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert_eq!(d[1], 0.0);
        let ms = p.density_stats(&g);
        assert!((ms.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn density_ignores_cross_edges() {
        let mut el: EdgeList = [(0, 3), (1, 4), (2, 5)].into_iter().collect();
        let g = Csr::from_edges(6, &mut el);
        let d = partition().densities(&g);
        assert_eq!(d, vec![0.0, 0.0]);
    }

    #[test]
    fn singleton_groups_density_one() {
        let mut el = EdgeList::new();
        let g = Csr::from_edges(2, &mut el);
        let p = Partition::singletons(2);
        assert_eq!(p.densities(&g), vec![1.0, 1.0]);
    }

    #[test]
    fn histogram_bins() {
        // Sizes: 25 (bin 0), 150 (bin 2), 3000 (bin 6), 5 (no bin).
        let mut membership = Vec::new();
        for (gid, size) in [(0u32, 25usize), (1, 150), (2, 3000), (3, 5)] {
            membership.extend(std::iter::repeat_n(Some(gid), size));
        }
        let p = Partition::from_membership(membership);
        let (groups, seqs) = p.size_histogram();
        assert_eq!(groups, [1, 0, 1, 0, 0, 0, 1]);
        assert_eq!(seqs, [25, 0, 150, 0, 0, 0, 3000]);
    }

    #[test]
    fn bin_edges_inclusive() {
        for (size, expected_bin) in [(20, 0), (49, 0), (50, 1), (2000, 5), (2001, 6)] {
            let p = Partition::from_membership(std::iter::repeat_n(Some(0u32), size).collect());
            let (groups, _) = p.size_histogram();
            let hit = groups.iter().position(|&c| c == 1).unwrap();
            assert_eq!(hit, expected_bin, "size {size}");
        }
    }

    #[test]
    fn from_union_find_matches_sets() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 4);
        uf.union(1, 2);
        let p = Partition::from_union_find(&mut uf);
        assert_eq!(p.n_groups(), 3);
        assert_eq!(p.group_of(0), p.group_of(4));
        assert_eq!(p.group_of(1), p.group_of(2));
        assert_ne!(p.group_of(0), p.group_of(3));
    }

    #[test]
    fn from_labels_all_assigned() {
        let p = Partition::from_labels(&[2, 2, 0]);
        assert_eq!(p.n_groups(), 2);
        assert_eq!(p.assigned_count(), 3);
    }
}
