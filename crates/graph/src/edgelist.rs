//! Edge-list accumulation for homology graph construction.
//!
//! Edges arrive from the alignment phase as unordered `(i, j)` pairs; this
//! container canonicalizes (`i < j`), deduplicates, drops self-loops, and
//! hands a clean undirected edge set to the CSR builder.

use crate::VertexId;

/// A growable undirected edge list.
#[derive(Debug, Clone, Default)]
pub struct EdgeList {
    /// Canonical packed edges `(min << 32) | max`, possibly unsorted/dup
    /// until [`EdgeList::finish`].
    packed: Vec<u64>,
    finished: bool,
}

impl EdgeList {
    /// Create an empty edge list.
    pub fn new() -> Self {
        EdgeList::default()
    }

    /// Create with capacity for `n` edges.
    pub fn with_capacity(n: usize) -> Self {
        EdgeList {
            packed: Vec::with_capacity(n),
            finished: false,
        }
    }

    /// Add an undirected edge; self-loops are ignored.
    #[inline]
    pub fn push(&mut self, a: VertexId, b: VertexId) {
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.packed.push(((lo as u64) << 32) | hi as u64);
        self.finished = false;
    }

    /// Append all edges from another list.
    pub fn extend_from(&mut self, other: &EdgeList) {
        self.packed.extend_from_slice(&other.packed);
        self.finished = false;
    }

    /// Sort and deduplicate. Idempotent.
    pub fn finish(&mut self) {
        if !self.finished {
            self.packed.sort_unstable();
            self.packed.dedup();
            self.finished = true;
        }
    }

    /// Number of (deduplicated, if finished) edges.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// True if there are no edges.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Iterate canonical `(lo, hi)` edges. Call [`EdgeList::finish`] first
    /// for a deduplicated, sorted view.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.packed
            .iter()
            .map(|&p| ((p >> 32) as VertexId, p as VertexId))
    }

    /// Largest vertex id referenced, or `None` if empty.
    pub fn max_vertex(&self) -> Option<VertexId> {
        self.packed
            .iter()
            .map(|&p| ((p >> 32) as VertexId).max(p as VertexId))
            .max()
    }
}

impl FromIterator<(VertexId, VertexId)> for EdgeList {
    fn from_iter<I: IntoIterator<Item = (VertexId, VertexId)>>(iter: I) -> Self {
        let mut el = EdgeList::new();
        for (a, b) in iter {
            el.push(a, b);
        }
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_and_dedups() {
        let mut el = EdgeList::new();
        el.push(3, 1);
        el.push(1, 3);
        el.push(2, 4);
        el.finish();
        let edges: Vec<_> = el.iter().collect();
        assert_eq!(edges, vec![(1, 3), (2, 4)]);
    }

    #[test]
    fn drops_self_loops() {
        let mut el = EdgeList::new();
        el.push(5, 5);
        el.push(1, 2);
        el.finish();
        assert_eq!(el.len(), 1);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut el: EdgeList = [(0, 1), (1, 0), (0, 1)].into_iter().collect();
        el.finish();
        let once = el.len();
        el.finish();
        assert_eq!(el.len(), once);
        assert_eq!(once, 1);
    }

    #[test]
    fn max_vertex() {
        let mut el = EdgeList::new();
        assert_eq!(el.max_vertex(), None);
        el.push(2, 9);
        el.push(4, 1);
        assert_eq!(el.max_vertex(), Some(9));
    }

    #[test]
    fn extend_from_merges() {
        let mut a: EdgeList = [(0, 1)].into_iter().collect();
        let b: EdgeList = [(1, 2), (0, 1)].into_iter().collect();
        a.extend_from(&b);
        a.finish();
        assert_eq!(a.len(), 2);
    }
}
