//! Synthetic graph generators.
//!
//! Two uses in the reproduction:
//!
//! * **Property tests** — small random and planted graphs with known
//!   structure to check clustering invariants against.
//! * **Large-scale demo (§IV-C / conclusions)** — the paper's 11M-vertex,
//!   640M-edge Pacific Ocean homology graph is reproduced *shape-wise* by a
//!   planted-partition graph generated directly (skipping alignment), with
//!   heavy-tailed group sizes and a capped intra-group degree so density
//!   falls with family size like real homology graphs.
//!
//! Intra-group edges are sampled with geometric skipping over the pair-index
//! space, so generation is O(#edges), not O(#pairs).

use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::partition::Partition;
use crate::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};
use serde::{Deserialize, Serialize};

/// Configuration of the planted-partition generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedConfig {
    /// Sizes of the planted groups.
    pub group_sizes: Vec<usize>,
    /// Extra vertices not in any group.
    pub n_noise_vertices: usize,
    /// Within-group edge probability for small groups.
    pub p_intra: f64,
    /// Cap on the *expected* intra-group degree; for a group of size k the
    /// effective probability is `min(p_intra, max_intra_degree / (k-1))`.
    /// Mirrors real homology graphs, where family density falls with size.
    pub max_intra_degree: f64,
    /// Expected random inter-group edges per vertex.
    pub inter_edges_per_vertex: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PlantedConfig {
    /// Heavy-tailed group sizes drawn from a truncated Zipf, covering
    /// `n_group_vertices` vertices in total.
    pub fn zipf_groups(
        n_group_vertices: usize,
        min_size: usize,
        max_size: usize,
        exponent: f64,
        seed: u64,
    ) -> Vec<usize> {
        assert!(min_size >= 2 && max_size >= min_size);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let zipf = Zipf::new(max_size as u64, exponent).expect("valid zipf");
        let mut sizes = Vec::new();
        let mut remaining = n_group_vertices;
        while remaining >= min_size {
            let mut s = (zipf.sample(&mut rng) as usize).max(min_size);
            s = s.min(remaining);
            sizes.push(s);
            remaining -= s;
        }
        if remaining > 0 {
            if let Some(last) = sizes.last_mut() {
                *last += remaining;
            } else {
                sizes.push(remaining);
            }
        }
        sizes
    }
}

/// A generated planted-partition graph and its ground-truth grouping.
#[derive(Debug, Clone)]
pub struct PlantedGraph {
    /// The generated graph.
    pub graph: Csr,
    /// Ground-truth group of each vertex (noise vertices unassigned).
    pub truth: Partition,
}

/// Generate a planted-partition graph.
pub fn planted_partition(config: &PlantedConfig) -> PlantedGraph {
    let n_grouped: usize = config.group_sizes.iter().sum();
    let n = n_grouped + config.n_noise_vertices;
    assert!(n <= u32::MAX as usize, "vertex space exceeds u32");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut edges = EdgeList::new();
    let mut membership: Vec<Option<u32>> = vec![None; n];

    let mut base = 0 as VertexId;
    for (gid, &k) in config.group_sizes.iter().enumerate() {
        for v in base..base + k as VertexId {
            membership[v as usize] = Some(gid as u32);
        }
        if k >= 2 {
            let p = if k > 1 {
                config
                    .p_intra
                    .min(config.max_intra_degree / (k as f64 - 1.0))
                    .clamp(0.0, 1.0)
            } else {
                0.0
            };
            sample_pairs_geometric(&mut rng, k, p, |a, b| {
                edges.push(base + a as VertexId, base + b as VertexId);
            });
        }
        base += k as VertexId;
    }

    let n_inter = ((config.inter_edges_per_vertex * n as f64) / 2.0).round() as usize;
    for _ in 0..n_inter {
        let a = rng.gen_range(0..n as VertexId);
        let b = rng.gen_range(0..n as VertexId);
        edges.push(a, b); // self-loops dropped by EdgeList
    }

    PlantedGraph {
        graph: Csr::from_edges(n, &mut edges),
        truth: Partition::from_membership(membership),
    }
}

/// Uniform G(n, m): `m` distinct random edges over `n` vertices.
pub fn random_graph(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n >= 2 || m == 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = EdgeList::with_capacity(m);
    // Over-sample slightly and dedup; repeat until enough distinct edges.
    while {
        edges.finish();
        edges.len() < m
    } {
        let deficit = m - edges.len();
        for _ in 0..deficit + deficit / 8 + 4 {
            let a = rng.gen_range(0..n as VertexId);
            let b = rng.gen_range(0..n as VertexId);
            edges.push(a, b);
        }
        // Guard against impossible m (more than C(n,2)).
        let max_edges = n * (n - 1) / 2;
        if m > max_edges {
            panic!("requested {m} edges but only {max_edges} possible");
        }
    }
    // Trim any overshoot deterministically (keep sorted-first m edges).
    let mut trimmed = EdgeList::with_capacity(m);
    for (a, b) in edges.iter().take(m) {
        trimmed.push(a, b);
    }
    Csr::from_edges(n, &mut trimmed)
}

/// Sample pairs `(a, b)` with `a < b < k`, each independently with
/// probability `p`, via geometric skipping: O(expected hits).
fn sample_pairs_geometric<R: Rng + ?Sized>(
    rng: &mut R,
    k: usize,
    p: f64,
    mut emit: impl FnMut(usize, usize),
) {
    if p <= 0.0 || k < 2 {
        return;
    }
    let total = k * (k - 1) / 2;
    if p >= 1.0 {
        for t in 0..total {
            let (a, b) = triangular_decode(t, k);
            emit(a, b);
        }
        return;
    }
    let log1mp = (1.0 - p).ln();
    let mut t: usize = 0;
    loop {
        // Skip ahead geometrically.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (u.ln() / log1mp).floor() as usize;
        t = match t.checked_add(skip) {
            Some(v) => v,
            None => return,
        };
        if t >= total {
            return;
        }
        let (a, b) = triangular_decode(t, k);
        emit(a, b);
        t += 1;
    }
}

/// Decode linear pair index `t` into `(a, b)` with `a < b < k`, where pairs
/// are ordered (0,1),(0,2),...,(0,k-1),(1,2),...
fn triangular_decode(t: usize, k: usize) -> (usize, usize) {
    // Row a contributes (k-1-a) pairs; find a with cumulative > t.
    // Closed form via quadratic, then integer fix-up for float error.
    let tf = t as f64;
    let kf = k as f64;
    let mut a =
        ((2.0 * kf - 1.0 - ((2.0 * kf - 1.0).powi(2) - 8.0 * tf).sqrt()) / 2.0).floor() as usize;
    // F(a) = a*k - a*(a+1)/2 is the first index of row a.
    let row_start = |a: usize| a * k - a * (a + 1) / 2;
    while a > 0 && row_start(a) > t {
        a -= 1;
    }
    while row_start(a + 1) <= t {
        a += 1;
    }
    let b = a + 1 + (t - row_start(a));
    debug_assert!(a < b && b < k, "decode({t},{k}) -> ({a},{b})");
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_decode_enumerates_all_pairs() {
        for k in [2usize, 3, 5, 10, 33] {
            let total = k * (k - 1) / 2;
            let mut seen = std::collections::HashSet::new();
            for t in 0..total {
                let (a, b) = triangular_decode(t, k);
                assert!(a < b && b < k);
                assert!(seen.insert((a, b)), "duplicate pair at t={t}, k={k}");
            }
            assert_eq!(seen.len(), total);
        }
    }

    #[test]
    fn p_one_gives_clique() {
        let cfg = PlantedConfig {
            group_sizes: vec![6],
            n_noise_vertices: 0,
            p_intra: 1.0,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.0,
            seed: 1,
        };
        let pg = planted_partition(&cfg);
        assert_eq!(pg.graph.m(), 15);
        assert_eq!(pg.truth.n_groups(), 1);
    }

    #[test]
    fn geometric_sampling_density_close_to_p() {
        let mut rng = StdRng::seed_from_u64(5);
        let k = 200;
        let p = 0.3;
        let mut count = 0usize;
        sample_pairs_geometric(&mut rng, k, p, |_, _| count += 1);
        let total = (k * (k - 1) / 2) as f64;
        let observed = count as f64 / total;
        assert!((observed - p).abs() < 0.02, "observed {observed}");
    }

    #[test]
    fn degree_cap_limits_big_groups() {
        let cfg = PlantedConfig {
            group_sizes: vec![1_000],
            n_noise_vertices: 0,
            p_intra: 1.0,
            max_intra_degree: 20.0,
            inter_edges_per_vertex: 0.0,
            seed: 2,
        };
        let pg = planted_partition(&cfg);
        let avg_deg = 2.0 * pg.graph.m() as f64 / 1_000.0;
        assert!((avg_deg - 20.0).abs() < 3.0, "avg degree {avg_deg}");
    }

    #[test]
    fn noise_vertices_unassigned() {
        let cfg = PlantedConfig {
            group_sizes: vec![4, 4],
            n_noise_vertices: 3,
            p_intra: 1.0,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 0.0,
            seed: 3,
        };
        let pg = planted_partition(&cfg);
        assert_eq!(pg.graph.n(), 11);
        assert_eq!(pg.truth.assigned_count(), 8);
        for v in 8..11u32 {
            assert_eq!(pg.truth.group_of(v), None);
        }
    }

    #[test]
    fn inter_edges_appear() {
        let cfg = PlantedConfig {
            group_sizes: vec![50, 50],
            n_noise_vertices: 0,
            p_intra: 0.0,
            max_intra_degree: 0.0,
            inter_edges_per_vertex: 4.0,
            seed: 4,
        };
        let pg = planted_partition(&cfg);
        // ~(4 * 100) / 2 = 200 attempted; some dedup/self-loop loss.
        assert!(pg.graph.m() > 150, "m = {}", pg.graph.m());
    }

    #[test]
    fn deterministic() {
        let cfg = PlantedConfig {
            group_sizes: vec![10, 20],
            n_noise_vertices: 5,
            p_intra: 0.5,
            max_intra_degree: f64::MAX,
            inter_edges_per_vertex: 1.0,
            seed: 9,
        };
        let a = planted_partition(&cfg);
        let b = planted_partition(&cfg);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn zipf_groups_cover_budget() {
        let sizes = PlantedConfig::zipf_groups(10_000, 4, 500, 1.5, 7);
        assert_eq!(sizes.iter().sum::<usize>(), 10_000);
        assert!(sizes.iter().all(|&s| s >= 2));
    }

    #[test]
    fn random_graph_exact_edges() {
        let g = random_graph(100, 500, 11);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 500);
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn random_graph_impossible_m_panics() {
        random_graph(4, 100, 0);
    }
}
