//! Graph deltas for incremental clustering.
//!
//! A [`GraphDelta`] accumulates vertex additions and undirected edge
//! insertions against a frozen base [`Csr`]. Applying a delta produces the
//! union CSR — bit-identical to rebuilding [`Csr::from_edges`] over the
//! union edge set, because both paths canonicalize the same way (sorted,
//! deduplicated per-vertex neighbor lists). The incremental engine only
//! re-shingles the *touched* vertices: min-wise shingles are a pure
//! function of one vertex's adjacency list, so a delta invalidates exactly
//! the lists it extends.

use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::VertexId;

/// Pending mutations against a base graph: appended vertices plus an
/// undirected edge-insertion set. Deletions are out of scope — protein
/// family graphs only grow as new sequences are aligned.
#[derive(Debug, Clone, Default)]
pub struct GraphDelta {
    /// Vertices appended past the base graph's `n` (isolated until an
    /// edge references them).
    n_new_vertices: usize,
    /// Edge insertions (canonicalized, self-loops dropped). May duplicate
    /// base edges; duplicates are no-ops under [`GraphDelta::apply`].
    edges: EdgeList,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Append `k` fresh vertices after the base graph's range.
    pub fn add_vertices(&mut self, k: usize) {
        self.n_new_vertices += k;
    }

    /// Insert the undirected edge `(a, b)`. Self-loops are ignored;
    /// vertices past the current range are implicitly created by
    /// [`GraphDelta::union_n`].
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) {
        self.edges.push(a, b);
    }

    /// Fold another delta into this one.
    pub fn merge(&mut self, other: &GraphDelta) {
        self.n_new_vertices += other.n_new_vertices;
        self.edges.extend_from(&other.edges);
    }

    /// Number of (possibly duplicate) pending edge insertions.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the delta carries neither vertices nor edges.
    pub fn is_empty(&self) -> bool {
        self.n_new_vertices == 0 && self.edges.is_empty()
    }

    /// Vertices appended by this delta (excluding ones implicitly created
    /// by out-of-range edge endpoints).
    pub fn n_new_vertices(&self) -> usize {
        self.n_new_vertices
    }

    /// The pending edge insertions.
    pub fn edges(&self) -> &EdgeList {
        &self.edges
    }

    /// |V| of the union graph over a base with `base_n` vertices: the base
    /// range, plus explicitly appended vertices, grown to cover any edge
    /// endpoint past both.
    pub fn union_n(&self, base_n: usize) -> usize {
        let mut n = base_n + self.n_new_vertices;
        if let Some(maxv) = self.edges.max_vertex() {
            n = n.max(maxv as usize + 1);
        }
        n
    }

    /// Per-vertex genuinely-new neighbors (insertions not already present
    /// in `base`), sorted and deduplicated, over the union vertex range.
    fn additions(&self, base: &Csr) -> Vec<Vec<VertexId>> {
        let n = self.union_n(base.n());
        let mut edges = self.edges.clone();
        edges.finish();
        let mut add: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for (a, b) in edges.iter() {
            let present = (a as usize) < base.n() && base.has_edge(a, b);
            if !present {
                add[a as usize].push(b);
                add[b as usize].push(a);
            }
        }
        // Canonical edge order almost sorts each list; finish the job so
        // the merge in `apply` sees strictly sorted unique inputs.
        for list in &mut add {
            list.sort_unstable();
            list.dedup();
        }
        add
    }

    /// Sorted unique vertices whose adjacency list actually changes —
    /// exactly the set whose Pass-I shingles a delta pass must recompute.
    /// Inserting an edge the base already has touches nothing.
    pub fn touched(&self, base: &Csr) -> Vec<VertexId> {
        self.additions(base)
            .iter()
            .enumerate()
            .filter(|(_, list)| !list.is_empty())
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Compact the overlay: merge the delta into `base`, producing the
    /// union CSR. Equal to `Csr::from_edges` over the union edge set (see
    /// `apply_matches_from_edges_rebuild`), so downstream fingerprints and
    /// shingles cannot tell an incrementally-grown graph from a batch one.
    pub fn apply(&self, base: &Csr) -> Csr {
        let add = self.additions(base);
        let n = add.len();
        let extra: usize = add.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut targets: Vec<VertexId> = Vec::with_capacity(base.targets().len() + extra);
        for (v, news) in add.iter().enumerate() {
            let olds: &[VertexId] = if v < base.n() {
                base.neighbors(v as VertexId)
            } else {
                &[]
            };
            // Merge two sorted disjoint lists (additions exclude present
            // edges, so no dedup is needed across them).
            let (mut i, mut j) = (0, 0);
            while i < olds.len() && j < news.len() {
                if olds[i] < news[j] {
                    targets.push(olds[i]);
                    i += 1;
                } else {
                    targets.push(news[j]);
                    j += 1;
                }
            }
            targets.extend_from_slice(&olds[i..]);
            targets.extend_from_slice(&news[j..]);
            offsets.push(targets.len() as u64);
        }
        Csr::from_raw(offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Csr {
        // 0-1, 1-2 path; 3 isolated.
        let mut el: EdgeList = [(0, 1), (1, 2)].into_iter().collect();
        Csr::from_edges(4, &mut el)
    }

    /// Rebuild the union graph from scratch: base edges + delta edges.
    fn rebuild(basis: &Csr, delta: &GraphDelta) -> Csr {
        let mut el = EdgeList::new();
        for (v, ns) in basis.iter() {
            for &u in ns {
                el.push(v, u);
            }
        }
        el.extend_from(delta.edges());
        Csr::from_edges(delta.union_n(basis.n()), &mut el)
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = base();
        let d = GraphDelta::new();
        assert!(d.is_empty());
        assert_eq!(d.apply(&g), g);
        assert!(d.touched(&g).is_empty());
    }

    #[test]
    fn apply_matches_from_edges_rebuild() {
        let g = base();
        let mut d = GraphDelta::new();
        d.add_vertices(2); // 4, 5
        d.add_edge(3, 4);
        d.add_edge(0, 2);
        d.add_edge(5, 1);
        d.add_edge(2, 1); // duplicate of a base edge
        let merged = d.apply(&g);
        assert_eq!(merged, rebuild(&g, &d));
        assert_eq!(merged.n(), 6);
        assert!(merged.has_edge(3, 4));
        assert!(merged.has_edge(0, 2));
    }

    #[test]
    fn touched_excludes_present_edges() {
        let g = base();
        let mut d = GraphDelta::new();
        d.add_edge(0, 1); // already present
        assert!(d.touched(&g).is_empty());
        d.add_edge(2, 3);
        assert_eq!(d.touched(&g), vec![2, 3]);
    }

    #[test]
    fn out_of_range_endpoint_grows_union() {
        let g = base();
        let mut d = GraphDelta::new();
        d.add_edge(0, 9);
        assert_eq!(d.union_n(g.n()), 10);
        let merged = d.apply(&g);
        assert_eq!(merged.n(), 10);
        assert!(merged.has_edge(0, 9));
        assert_eq!(d.touched(&g), vec![0, 9]);
    }

    #[test]
    fn merge_folds_both_parts() {
        let g = base();
        let mut a = GraphDelta::new();
        a.add_edge(0, 3);
        let mut b = GraphDelta::new();
        b.add_vertices(1);
        b.add_edge(3, 4);
        a.merge(&b);
        assert_eq!(a.union_n(g.n()), 5);
        assert_eq!(a.apply(&g), rebuild(&g, &a));
    }

    #[test]
    fn isolated_new_vertices_touch_nothing() {
        let g = base();
        let mut d = GraphDelta::new();
        d.add_vertices(3);
        assert!(!d.is_empty());
        assert!(d.touched(&g).is_empty());
        let merged = d.apply(&g);
        assert_eq!(merged.n(), 7);
        assert_eq!(merged.m(), g.m());
    }
}
