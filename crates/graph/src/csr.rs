//! Compressed sparse row adjacency.
//!
//! The homology graph is held in RAM on the CPU side as one contiguous
//! adjacency-list structure — exactly the layout the GPU batching code
//! slices from ("a batch of adjacency lists is first loaded into a
//! continuous memory space"). Offsets are `u64` so edge counts beyond 4 B
//! (the paper's 640 M-edge run doubled for symmetry) stay addressable.

use crate::edgelist::EdgeList;
use crate::VertexId;

/// An undirected graph in CSR form. Each undirected edge is stored twice
/// (once per endpoint), so `targets.len() == 2 * m`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
}

impl Csr {
    /// Build from an edge list over `n` vertices. The edge list is
    /// finished (sorted + deduplicated) if it was not already.
    pub fn from_edges(n: usize, edges: &mut EdgeList) -> Self {
        edges.finish();
        if let Some(maxv) = edges.max_vertex() {
            assert!(
                (maxv as usize) < n,
                "edge references vertex {maxv} but n = {n}"
            );
        }
        let mut degree = vec![0u64; n];
        for (a, b) in edges.iter() {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![0 as VertexId; acc as usize];
        for (a, b) in edges.iter() {
            targets[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        // Neighbor lists come out sorted because edges iterate in canonical
        // sorted order — except the `b -> a` halves; sort each list to give
        // a canonical CSR (cheap: lists are nearly sorted).
        for v in 0..n {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[s..e].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Number of vertices (including isolated ones).
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        &self.targets[s..e]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// True if the undirected edge `(a, b)` exists (binary search).
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterate `(vertex, neighbors)` for every vertex.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> + '_ {
        (0..self.n() as VertexId).map(move |v| (v, self.neighbors(v)))
    }

    /// Vertices with at least one edge.
    pub fn non_singleton_count(&self) -> usize {
        (0..self.n() as VertexId)
            .filter(|&v| self.degree(v) > 0)
            .count()
    }

    /// The raw offsets array (length `n + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw concatenated targets array (length `2m`).
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Construct directly from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the offsets are not monotone or don't cover `targets`.
    pub fn from_raw(offsets: Vec<u64>, targets: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty() && offsets[0] == 0);
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "non-monotone offsets"
        );
        assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        Csr { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Csr {
        // 0-1, 1-2, 0-2 triangle; 3 pendant to 2; 4 isolated.
        let mut el: EdgeList = [(0, 1), (1, 2), (0, 2), (2, 3)].into_iter().collect();
        Csr::from_edges(5, &mut el)
    }

    #[test]
    fn basic_shape() {
        let g = triangle_plus_pendant();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.non_singleton_count(), 4);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = triangle_plus_pendant();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbors(3), &[2]);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
        for (v, ns) in g.iter() {
            for &u in ns {
                assert!(g.neighbors(u).contains(&v), "asymmetric edge ({v},{u})");
            }
        }
    }

    #[test]
    fn has_edge() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(4, 0));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut el: EdgeList = [(0, 1), (1, 0), (0, 1)].into_iter().collect();
        let g = Csr::from_edges(2, &mut el);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "edge references vertex")]
    fn out_of_range_vertex_panics() {
        let mut el: EdgeList = [(0, 9)].into_iter().collect();
        Csr::from_edges(5, &mut el);
    }

    #[test]
    fn empty_graph() {
        let mut el = EdgeList::new();
        let g = Csr::from_edges(3, &mut el);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 0);
        assert_eq!(g.non_singleton_count(), 0);
    }

    #[test]
    fn from_raw_roundtrip() {
        let g = triangle_plus_pendant();
        let g2 = Csr::from_raw(g.offsets().to_vec(), g.targets().to_vec());
        assert_eq!(g, g2);
    }

    #[test]
    #[should_panic(expected = "non-monotone")]
    fn from_raw_rejects_bad_offsets() {
        Csr::from_raw(vec![0, 3, 1], vec![0]);
    }
}
