//! Input-graph statistics (Table II of the paper).

use crate::components::bfs_components;
use crate::csr::Csr;
use serde::{Deserialize, Serialize};

/// Mean and population standard deviation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanSd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub sd: f64,
}

impl MeanSd {
    /// Compute over an iterator; zeros for an empty sample.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut n = 0usize;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for v in values {
            n += 1;
            sum += v;
            sumsq += v * v;
        }
        if n == 0 {
            return MeanSd { mean: 0.0, sd: 0.0 };
        }
        let mean = sum / n as f64;
        MeanSd {
            mean,
            sd: (sumsq / n as f64 - mean * mean).max(0.0).sqrt(),
        }
    }
}

impl std::fmt::Display for MeanSd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0} ± {:.0}", self.mean, self.sd)
    }
}

/// Table II: similarity graph statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphStats {
    /// Vertices with degree ≥ 1 (the paper ignores singleton vertices).
    pub n_non_singleton: usize,
    /// Total vertices including singletons.
    pub n_total: usize,
    /// Undirected edge count.
    pub n_edges: usize,
    /// Degree mean ± sd over non-singleton vertices.
    pub degree: MeanSd,
    /// Largest connected-component size.
    pub largest_cc: usize,
}

impl GraphStats {
    /// Compute all Table II statistics for `g`.
    pub fn of(g: &Csr) -> Self {
        let degrees: Vec<f64> = (0..g.n() as u32)
            .map(|v| g.degree(v) as f64)
            .filter(|&d| d > 0.0)
            .collect();
        let cc = bfs_components(g);
        GraphStats {
            n_non_singleton: degrees.len(),
            n_total: g.n(),
            n_edges: g.m(),
            degree: MeanSd::of(degrees.iter().copied()),
            largest_cc: cc.largest(),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "# Vertices (non-singleton): {}  (total incl. singletons: {})",
            self.n_non_singleton, self.n_total
        )?;
        writeln!(f, "# Edges:                    {}", self.n_edges)?;
        writeln!(f, "Avg. degree:                {}", self.degree)?;
        write!(f, "Largest CC size:            {}", self.largest_cc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    #[test]
    fn stats_of_small_graph() {
        // Triangle 0-1-2 + edge 3-4 + isolated 5.
        let mut el: EdgeList = [(0, 1), (1, 2), (0, 2), (3, 4)].into_iter().collect();
        let g = Csr::from_edges(6, &mut el);
        let st = GraphStats::of(&g);
        assert_eq!(st.n_non_singleton, 5);
        assert_eq!(st.n_total, 6);
        assert_eq!(st.n_edges, 4);
        assert_eq!(st.largest_cc, 3);
        // degrees of non-singletons: 2,2,2,1,1 → mean 1.6
        assert!((st.degree.mean - 1.6).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let mut el = EdgeList::new();
        let g = Csr::from_edges(0, &mut el);
        let st = GraphStats::of(&g);
        assert_eq!(st.n_non_singleton, 0);
        assert_eq!(st.n_edges, 0);
        assert_eq!(st.largest_cc, 0);
    }

    #[test]
    fn display_mentions_edges() {
        let mut el: EdgeList = [(0, 1)].into_iter().collect();
        let g = Csr::from_edges(2, &mut el);
        let s = GraphStats::of(&g).to_string();
        assert!(s.contains("# Edges"));
        assert!(s.contains("Largest CC"));
    }
}
