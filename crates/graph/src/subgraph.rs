//! Induced subgraph extraction.
//!
//! pClust's driver "applie\[s\] connected component detection to the input
//! graph to break down the large problem instance into subproblems of much
//! smaller size" and clusters each component independently. That needs the
//! induced subgraph of a vertex subset, with a mapping back to the original
//! vertex ids.

use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::VertexId;

/// An induced subgraph plus the mapping from its dense local ids back to
/// the parent graph's vertex ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The induced subgraph over dense local ids `0..members.len()`.
    pub graph: Csr,
    /// `members[local] = global` — ascending, so the mapping is monotone.
    pub members: Vec<VertexId>,
}

impl Subgraph {
    /// Map a local vertex id back to the parent graph.
    #[inline]
    pub fn to_global(&self, local: VertexId) -> VertexId {
        self.members[local as usize]
    }

    /// Map a parent-graph vertex id to its local id, if present.
    pub fn to_local(&self, global: VertexId) -> Option<VertexId> {
        self.members
            .binary_search(&global)
            .ok()
            .map(|i| i as VertexId)
    }
}

/// Extract the subgraph induced by `members` (any order; deduplicated).
pub fn induced(g: &Csr, members: &[VertexId]) -> Subgraph {
    let mut members: Vec<VertexId> = members.to_vec();
    members.sort_unstable();
    members.dedup();
    // Global → local lookup. A full-size map keeps extraction O(m_sub);
    // u32::MAX marks absence.
    let mut local_of = vec![u32::MAX; g.n()];
    for (local, &global) in members.iter().enumerate() {
        local_of[global as usize] = local as u32;
    }
    let mut edges = EdgeList::new();
    for (local, &global) in members.iter().enumerate() {
        for &nb in g.neighbors(global) {
            let nb_local = local_of[nb as usize];
            if nb_local != u32::MAX && nb_local > local as u32 {
                edges.push(local as u32, nb_local);
            }
        }
    }
    Subgraph {
        graph: Csr::from_edges(members.len(), &mut edges),
        members,
    }
}

/// Split `g` into its connected components' induced subgraphs, skipping
/// isolated vertices (singleton components). Ordered by descending size.
pub fn component_subgraphs(g: &Csr) -> Vec<Subgraph> {
    let cc = crate::components::bfs_components(g);
    let mut groups = cc.groups();
    groups.retain(|grp| grp.len() > 1);
    groups.sort_by_key(|grp| std::cmp::Reverse(grp.len()));
    groups.into_iter().map(|grp| induced(g, &grp)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_components() -> Csr {
        // 0-1-2 triangle, 5-6 edge, 3 and 4 isolated.
        let mut el: EdgeList = [(0, 1), (1, 2), (0, 2), (5, 6)].into_iter().collect();
        Csr::from_edges(7, &mut el)
    }

    #[test]
    fn induced_preserves_internal_edges_only() {
        let g = two_components();
        let sub = induced(&g, &[0, 2, 5]);
        assert_eq!(sub.members, vec![0, 2, 5]);
        assert_eq!(sub.graph.n(), 3);
        assert_eq!(sub.graph.m(), 1); // only 0-2 survives
        assert!(sub.graph.has_edge(0, 1)); // local ids of global 0 and 2
        assert_eq!(sub.to_global(1), 2);
        assert_eq!(sub.to_local(5), Some(2));
        assert_eq!(sub.to_local(6), None);
    }

    #[test]
    fn induced_dedups_and_sorts() {
        let g = two_components();
        let sub = induced(&g, &[2, 0, 2, 1]);
        assert_eq!(sub.members, vec![0, 1, 2]);
        assert_eq!(sub.graph.m(), 3);
    }

    #[test]
    fn component_subgraphs_skip_singletons() {
        let g = two_components();
        let subs = component_subgraphs(&g);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].members, vec![0, 1, 2]); // largest first
        assert_eq!(subs[1].members, vec![5, 6]);
        assert_eq!(subs[0].graph.m(), 3);
        assert_eq!(subs[1].graph.m(), 1);
    }

    #[test]
    fn empty_selection() {
        let g = two_components();
        let sub = induced(&g, &[]);
        assert_eq!(sub.graph.n(), 0);
        assert!(sub.members.is_empty());
    }

    #[test]
    fn roundtrip_global_local() {
        let g = two_components();
        let sub = induced(&g, &[1, 5, 6]);
        for local in 0..sub.graph.n() as u32 {
            assert_eq!(sub.to_local(sub.to_global(local)), Some(local));
        }
    }
}
