//! Bipartite shingle graphs — the `<shingle, L(shingle)>` adjacency form.
//!
//! A shingling pass emits tuples `<s_j, generator>` where `s_j` is a shingle
//! (an s-element subset of vertex ids, identified by a 64-bit key that also
//! encodes the random trial) and `generator` is the node that produced it.
//! After the CPU-side aggregation ("a sorting is done to gather all vertices
//! that generated each shingle"), the tuples collapse into this structure:
//! one record per **distinct** shingle, holding
//!
//! * the shingle's `s` *element* vertex ids (members of the sampled subset —
//!   these are what Phase III unions into clusters), and
//! * the generator list `L(shingle)` (these are the adjacency lists fed to
//!   the next shingling pass).
//!
//! For the first-level graph G′(S1, V′l, E′), generators are vertices of G.
//! For the second-level graph G″(S2, S′1, E″), generators are *indices of
//! first-level shingles* (0-based positions in the pass-I `ShingleGraph`).

use crate::VertexId;

/// Aggregated bipartite shingle graph.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShingleGraph {
    s: usize,
    keys: Vec<u64>,
    elements: Vec<VertexId>,
    gen_offsets: Vec<u64>,
    generators: Vec<u32>,
}

impl ShingleGraph {
    /// Build from grouped records. `records` yields
    /// `(key, elements, generators)` with **distinct, ascending keys**;
    /// every `elements` slice must have exactly `s` entries.
    pub fn from_records<'a, I>(s: usize, records: I) -> Self
    where
        I: IntoIterator<Item = (u64, &'a [VertexId], &'a [u32])>,
    {
        let mut g = ShingleGraph {
            s,
            keys: Vec::new(),
            elements: Vec::new(),
            gen_offsets: vec![0],
            generators: Vec::new(),
        };
        for (key, elements, generators) in records {
            assert_eq!(elements.len(), s, "shingle must have exactly s elements");
            if let Some(&last) = g.keys.last() {
                assert!(key > last, "keys must be distinct ascending");
            }
            g.keys.push(key);
            g.elements.extend_from_slice(elements);
            g.generators.extend_from_slice(generators);
            g.gen_offsets.push(g.generators.len() as u64);
        }
        g
    }

    /// Build directly from column arrays (the allocation-free fast path
    /// used by the CPU aggregation): `keys` strictly ascending, `elements`
    /// holding exactly `s` entries per key, `gen_offsets` of length
    /// `keys.len() + 1` delimiting `generators`.
    pub fn from_parts(
        s: usize,
        keys: Vec<u64>,
        elements: Vec<VertexId>,
        gen_offsets: Vec<u64>,
        generators: Vec<u32>,
    ) -> Self {
        assert_eq!(elements.len(), s * keys.len(), "elements shape");
        assert_eq!(gen_offsets.len(), keys.len() + 1, "offsets shape");
        assert_eq!(
            *gen_offsets.last().unwrap_or(&0) as usize,
            generators.len(),
            "offsets must cover generators"
        );
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys ascending");
        debug_assert!(gen_offsets.windows(2).all(|w| w[0] <= w[1]));
        ShingleGraph {
            s,
            keys,
            elements,
            gen_offsets,
            generators,
        }
    }

    /// Number of distinct shingles.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the graph has no shingles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Elements per shingle (the `s` parameter of the pass that built it).
    #[inline]
    pub fn s(&self) -> usize {
        self.s
    }

    /// The key of shingle `i`.
    #[inline]
    pub fn key(&self, i: usize) -> u64 {
        self.keys[i]
    }

    /// The `s` element vertex ids of shingle `i`.
    #[inline]
    pub fn elements(&self, i: usize) -> &[VertexId] {
        &self.elements[i * self.s..(i + 1) * self.s]
    }

    /// The generator list `L(shingle_i)`.
    #[inline]
    pub fn generators(&self, i: usize) -> &[u32] {
        let s = self.gen_offsets[i] as usize;
        let e = self.gen_offsets[i + 1] as usize;
        &self.generators[s..e]
    }

    /// Total number of `<shingle, generator>` edges (|E′| of the paper).
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.generators.len()
    }

    /// Iterate `(index, key, elements, generators)` over all shingles.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, &[VertexId], &[u32])> + '_ {
        (0..self.len()).map(move |i| (i, self.keys[i], self.elements(i), self.generators(i)))
    }

    /// Generator-list offsets (`len() + 1` entries) — the adjacency-list
    /// boundary structure handed to the next shingling pass.
    #[inline]
    pub fn gen_offsets(&self) -> &[u64] {
        &self.gen_offsets
    }

    /// The concatenated generator lists (flat adjacency array).
    #[inline]
    pub fn generators_flat(&self) -> &[u32] {
        &self.generators
    }

    /// Number of *distinct* generator ids across all shingles — |V′l| of the
    /// paper (the subset of input nodes that contributed ≥ 1 shingle).
    pub fn distinct_generators(&self) -> usize {
        let mut gens: Vec<u32> = self.generators.clone();
        gens.sort_unstable();
        gens.dedup();
        gens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShingleGraph {
        ShingleGraph::from_records(
            2,
            vec![
                (10u64, &[1u32, 5][..], &[0u32, 3, 7][..]),
                (20, &[2, 5], &[3][..]),
                (35, &[0, 9], &[1, 2][..]),
            ],
        )
    }

    #[test]
    fn shape_and_access() {
        let g = sample();
        assert_eq!(g.len(), 3);
        assert_eq!(g.s(), 2);
        assert_eq!(g.n_edges(), 6);
        assert_eq!(g.key(1), 20);
        assert_eq!(g.elements(0), &[1, 5]);
        assert_eq!(g.elements(2), &[0, 9]);
        assert_eq!(g.generators(0), &[0, 3, 7]);
        assert_eq!(g.generators(1), &[3]);
    }

    #[test]
    fn distinct_generators_counts_once() {
        let g = sample();
        // generators: {0,3,7} ∪ {3} ∪ {1,2} = {0,1,2,3,7}
        assert_eq!(g.distinct_generators(), 5);
    }

    #[test]
    fn iter_visits_all() {
        let g = sample();
        let keys: Vec<u64> = g.iter().map(|(_, k, _, _)| k).collect();
        assert_eq!(keys, vec![10, 20, 35]);
    }

    #[test]
    fn empty_graph() {
        let g = ShingleGraph::from_records(3, std::iter::empty());
        assert!(g.is_empty());
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.distinct_generators(), 0);
    }

    #[test]
    #[should_panic(expected = "exactly s elements")]
    fn wrong_element_count_panics() {
        ShingleGraph::from_records(2, vec![(1u64, &[1u32][..], &[0u32][..])]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_keys_panic() {
        ShingleGraph::from_records(
            1,
            vec![(5u64, &[0u32][..], &[0u32][..]), (5, &[1][..], &[1][..])],
        );
    }
}
