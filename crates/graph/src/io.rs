//! Adjacency-list serialization — the pipeline's disk I/O stage.
//!
//! Algorithm 2 begins with "CPU loads graph from disk I/O"; the time spent
//! here is the *Disk I/O* column of Table I. Two formats:
//!
//! * **text** — one line per vertex: `vertex: n1 n2 n3 ...` (only vertices
//!   with neighbors are written). Human-inspectable; used in examples.
//! * **binary** — little-endian framing via the `bytes` crate:
//!   `[n: u64][m2: u64][offsets: (n+1) × u64][targets: m2 × u32]`. This is
//!   the fast path for the large benchmark graphs.

use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::VertexId;
use bytes::{Buf, BufMut};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic header for the binary format.
const MAGIC: &[u8; 8] = b"GPCLGRF1";

/// Write a graph as text adjacency lists.
pub fn write_text<W: Write>(writer: W, g: &Csr) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for (v, ns) in g.iter() {
        if ns.is_empty() {
            continue;
        }
        write!(w, "{v}:")?;
        for &u in ns {
            write!(w, " {u}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Read a text adjacency-list graph. `n` must cover all referenced vertices.
pub fn read_text<R: Read>(reader: R, n: usize) -> io::Result<Csr> {
    let r = BufReader::new(reader);
    let mut edges = EdgeList::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, rest) = line.split_once(':').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: missing ':'", lineno + 1),
            )
        })?;
        let v: VertexId = head.trim().parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad vertex id: {e}", lineno + 1),
            )
        })?;
        for tok in rest.split_whitespace() {
            let u: VertexId = tok.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad neighbor id: {e}", lineno + 1),
                )
            })?;
            edges.push(v, u);
        }
    }
    Ok(Csr::from_edges(n, &mut edges))
}

/// Write a graph in the binary format.
pub fn write_binary<W: Write>(writer: W, g: &Csr) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let mut header = Vec::with_capacity(24);
    header.put_slice(MAGIC);
    header.put_u64_le(g.n() as u64);
    header.put_u64_le(g.targets().len() as u64);
    w.write_all(&header)?;
    let mut buf = Vec::with_capacity(8 * 1024);
    for chunk in g.offsets().chunks(1024) {
        buf.clear();
        for &o in chunk {
            buf.put_u64_le(o);
        }
        w.write_all(&buf)?;
    }
    for chunk in g.targets().chunks(2048) {
        buf.clear();
        for &t in chunk {
            buf.put_u32_le(t);
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Read a graph in the binary format.
pub fn read_binary<R: Read>(mut reader: R) -> io::Result<Csr> {
    let mut header = [0u8; 24];
    reader.read_exact(&mut header)?;
    let mut h = &header[..];
    let mut magic = [0u8; 8];
    h.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let n = h.get_u64_le() as usize;
    let m2 = h.get_u64_le() as usize;

    let mut raw = vec![0u8; (n + 1) * 8];
    reader.read_exact(&mut raw)?;
    let mut b = &raw[..];
    let offsets: Vec<u64> = (0..=n).map(|_| b.get_u64_le()).collect();

    let mut raw = vec![0u8; m2 * 4];
    reader.read_exact(&mut raw)?;
    let mut b = &raw[..];
    let targets: Vec<VertexId> = (0..m2).map(|_| b.get_u32_le()).collect();
    Ok(Csr::from_raw(offsets, targets))
}

/// Write a graph to `path`, choosing format by extension (`.txt` → text,
/// anything else → binary).
pub fn write_file<P: AsRef<Path>>(path: P, g: &Csr) -> io::Result<()> {
    let f = std::fs::File::create(&path)?;
    if path.as_ref().extension().is_some_and(|e| e == "txt") {
        write_text(f, g)
    } else {
        write_binary(f, g)
    }
}

/// Read a binary graph from `path`.
pub fn read_file<P: AsRef<Path>>(path: P) -> io::Result<Csr> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        let mut el: EdgeList = [(0, 1), (1, 2), (0, 2), (2, 3)].into_iter().collect();
        Csr::from_edges(5, &mut el)
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &g).unwrap();
        let g2 = read_text(&buf[..], g.n()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let text = b"# comment\n\n0: 1 2\n1: 0\n2: 0\n";
        let g = read_text(&text[..], 3).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text(&b"nonsense\n"[..], 3).is_err());
        assert!(read_text(&b"0: x\n"[..], 3).is_err());
    }

    #[test]
    fn file_roundtrip_binary() {
        let dir = std::env::temp_dir().join("gpclust_graph_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = sample();
        write_file(&path, &g).unwrap();
        let g2 = read_file(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let mut el = EdgeList::new();
        let g = Csr::from_edges(0, &mut el);
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }
}
