//! Adjacency-list serialization — the pipeline's disk I/O stage.
//!
//! Algorithm 2 begins with "CPU loads graph from disk I/O"; the time spent
//! here is the *Disk I/O* column of Table I. Two formats:
//!
//! * **text** — one line per vertex: `vertex: n1 n2 n3 ...` (only vertices
//!   with neighbors are written). Human-inspectable; used in examples.
//! * **binary** — little-endian framing via the `bytes` crate:
//!   `[n: u64][m2: u64][offsets: (n+1) × u64][targets: m2 × u32]`. This is
//!   the fast path for the large benchmark graphs.
//!
//! Both binary readers stream in fixed-size chunks — no `m2 × 4`-byte
//! staging buffer — and [`CsrFile`] keeps only the offsets resident,
//! reading target windows on demand for the out-of-core sharded passes.

use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::VertexId;
use bytes::{Buf, BufMut};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic header for the binary format.
const MAGIC: &[u8; 8] = b"GPCLGRF1";

/// Staging-buffer size for the chunked binary reads (bytes).
const READ_CHUNK: usize = 1 << 20;

/// Write a graph as text adjacency lists.
pub fn write_text<W: Write>(writer: W, g: &Csr) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for (v, ns) in g.iter() {
        if ns.is_empty() {
            continue;
        }
        write!(w, "{v}:")?;
        for &u in ns {
            write!(w, " {u}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Read a text adjacency-list graph. `n` must cover all referenced vertices.
pub fn read_text<R: Read>(reader: R, n: usize) -> io::Result<Csr> {
    let r = BufReader::new(reader);
    let mut edges = EdgeList::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, rest) = line.split_once(':').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: missing ':'", lineno + 1),
            )
        })?;
        let v: VertexId = head.trim().parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad vertex id: {e}", lineno + 1),
            )
        })?;
        for tok in rest.split_whitespace() {
            let u: VertexId = tok.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad neighbor id: {e}", lineno + 1),
                )
            })?;
            edges.push(v, u);
        }
    }
    Ok(Csr::from_edges(n, &mut edges))
}

/// Write a graph in the binary format.
pub fn write_binary<W: Write>(writer: W, g: &Csr) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let mut header = Vec::with_capacity(24);
    header.put_slice(MAGIC);
    header.put_u64_le(g.n() as u64);
    header.put_u64_le(g.targets().len() as u64);
    w.write_all(&header)?;
    let mut buf = Vec::with_capacity(8 * 1024);
    for chunk in g.offsets().chunks(1024) {
        buf.clear();
        for &o in chunk {
            buf.put_u64_le(o);
        }
        w.write_all(&buf)?;
    }
    for chunk in g.targets().chunks(2048) {
        buf.clear();
        for &t in chunk {
            buf.put_u32_le(t);
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Byte length of the binary header (magic + `n` + `m2`).
const HEADER_LEN: u64 = 24;

/// A malformed-graph error naming the byte offset the decoder gave up at
/// — `truncated` distinguishes files that simply end early
/// ([`io::ErrorKind::UnexpectedEof`]) from structural corruption
/// ([`io::ErrorKind::InvalidData`]).
fn corrupt(offset: u64, truncated: bool, detail: impl std::fmt::Display) -> io::Error {
    let kind = if truncated {
        io::ErrorKind::UnexpectedEof
    } else {
        io::ErrorKind::InvalidData
    };
    io::Error::new(
        kind,
        format!("graph file corrupt at byte {offset}: {detail}"),
    )
}

/// Parse the binary header, returning `(n, m2)`.
fn read_header<R: Read>(reader: &mut R) -> io::Result<(usize, usize)> {
    let mut header = [0u8; 24];
    reader.read_exact(&mut header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            corrupt(0, true, "truncated header (need 24 bytes)")
        } else {
            e
        }
    })?;
    let mut h = &header[..];
    let mut magic = [0u8; 8];
    h.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt(
            0,
            false,
            format!("bad magic {magic:02x?} (expected {MAGIC:02x?})"),
        ));
    }
    Ok((h.get_u64_le() as usize, h.get_u64_le() as usize))
}

/// Read `count` little-endian u64s in [`READ_CHUNK`]-sized chunks.
/// `base` is the byte position of the first word, for error reporting.
fn read_u64s_chunked<R: Read>(reader: &mut R, count: usize, base: u64) -> io::Result<Vec<u64>> {
    let mut out = Vec::with_capacity(count);
    let mut raw = vec![0u8; READ_CHUNK.min(count.max(1) * 8)];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(raw.len() / 8);
        let buf = &mut raw[..take * 8];
        let read_at = base + (count - remaining) as u64 * 8;
        reader.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                corrupt(
                    read_at,
                    true,
                    format!("truncated: {remaining} of {count} u64 words missing"),
                )
            } else {
                e
            }
        })?;
        let mut b = &buf[..];
        out.extend((0..take).map(|_| b.get_u64_le()));
        remaining -= take;
    }
    Ok(out)
}

/// Read `count` little-endian u32s in [`READ_CHUNK`]-sized chunks.
/// `base` is the byte position of the first word, for error reporting.
fn read_u32s_chunked<R: Read>(
    reader: &mut R,
    count: usize,
    base: u64,
) -> io::Result<Vec<VertexId>> {
    let mut out = Vec::with_capacity(count);
    let mut raw = vec![0u8; READ_CHUNK.min(count.max(1) * 4)];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(raw.len() / 4);
        let buf = &mut raw[..take * 4];
        let read_at = base + (count - remaining) as u64 * 4;
        reader.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                corrupt(
                    read_at,
                    true,
                    format!("truncated: {remaining} of {count} u32 words missing"),
                )
            } else {
                e
            }
        })?;
        let mut b = &buf[..];
        out.extend((0..take).map(|_| b.get_u32_le()));
        remaining -= take;
    }
    Ok(out)
}

/// Validate a decoded offset array against the header's target count:
/// `offsets[0] == 0`, monotonically non-decreasing, ending at `m2`. Error
/// offsets point at the offending word on disk.
fn validate_offsets(offsets: &[u64], m2: usize) -> io::Result<()> {
    match offsets.first() {
        Some(0) => {}
        Some(&o) => {
            return Err(corrupt(
                HEADER_LEN,
                false,
                format!("offsets[0] is {o}, not 0"),
            ))
        }
        None => return Err(corrupt(HEADER_LEN, false, "empty offset array")),
    }
    for (i, w) in offsets.windows(2).enumerate() {
        if w[1] < w[0] {
            return Err(corrupt(
                HEADER_LEN + 8 * (i as u64 + 1),
                false,
                format!("offsets[{}] = {} < offsets[{i}] = {}", i + 1, w[1], w[0]),
            ));
        }
    }
    let last = *offsets.last().unwrap();
    if last != m2 as u64 {
        return Err(corrupt(
            HEADER_LEN + 8 * (offsets.len() as u64 - 1),
            false,
            format!("offsets end at {last} but the header claims {m2} targets"),
        ));
    }
    Ok(())
}

/// Read a graph in the binary format. Streams in bounded chunks — the
/// staging buffer never exceeds [`READ_CHUNK`] bytes regardless of the
/// graph size (the decoded CSR itself is of course fully materialized;
/// use [`CsrFile`] to avoid that too). Truncated or structurally
/// malformed input yields a typed [`io::Error`] naming the byte offset,
/// never a panic.
pub fn read_binary<R: Read>(mut reader: R) -> io::Result<Csr> {
    let (n, m2) = read_header(&mut reader)?;
    let offsets = read_u64s_chunked(&mut reader, n + 1, HEADER_LEN)?;
    validate_offsets(&offsets, m2)?;
    let targets = read_u32s_chunked(&mut reader, m2, HEADER_LEN + 8 * (n as u64 + 1))?;
    Ok(Csr::from_raw(offsets, targets))
}

/// An opened binary graph whose **targets stay on disk**: only the
/// `(n+1) × 8`-byte offset array is resident, and the out-of-core sharded
/// passes read each shard's target window on demand with
/// [`CsrFile::read_targets`]. This is tentpole piece (3): the input graph
/// itself never needs to be fully resident.
#[derive(Debug)]
pub struct CsrFile {
    file: std::fs::File,
    offsets: Vec<u64>,
    /// Byte position of `targets[0]` within the file.
    targets_start: u64,
}

impl CsrFile {
    /// Open `path` and read the header + offsets (targets stay on disk).
    /// The offsets are validated up front (monotone, ending at the
    /// header's target count) and the file size is checked against the
    /// target array the header promises, so a truncated or bit-damaged
    /// file is refused here — with the byte offset — rather than
    /// surfacing mid-pass as a short window read.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<CsrFile> {
        let mut file = std::fs::File::open(path)?;
        let (n, m2) = read_header(&mut file)?;
        let offsets = read_u64s_chunked(&mut file, n + 1, HEADER_LEN)?;
        validate_offsets(&offsets, m2)?;
        let targets_start = file.stream_position()?;
        let need = targets_start + 4 * m2 as u64;
        let actual = file.metadata()?.len();
        if actual < need {
            return Err(corrupt(
                actual,
                true,
                format!("file is {actual} bytes but the target array ends at {need}"),
            ));
        }
        Ok(CsrFile {
            file,
            offsets,
            targets_start,
        })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The resident `n + 1` offset array.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Total target entries on disk (2·|E|).
    pub fn n_targets(&self) -> u64 {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Read the target window `[lo, hi)` (global element positions). A
    /// window outside the target array is a typed [`io::Error`], not a
    /// panic.
    pub fn read_targets(&self, lo: u64, hi: u64) -> io::Result<Vec<VertexId>> {
        if lo > hi || hi > self.n_targets() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "target window [{lo}, {hi}) out of bounds (file holds {} targets)",
                    self.n_targets()
                ),
            ));
        }
        let mut f = &self.file;
        f.seek(SeekFrom::Start(self.targets_start + lo * 4))?;
        read_u32s_chunked(&mut f, (hi - lo) as usize, self.targets_start + lo * 4)
    }

    /// Materialize the whole graph (the unbounded-budget fallback).
    pub fn read_all(&self) -> io::Result<Csr> {
        let targets = self.read_targets(0, self.n_targets())?;
        Ok(Csr::from_raw(self.offsets.clone(), targets))
    }
}

/// Stream a text adjacency-list file into a CSR with two line-buffered
/// passes — degree counting, then direct placement — so no intermediate
/// edge list is ever materialized (the historical [`read_text`] path holds
/// an 8-byte packed entry per edge *and* sorts it). Semantics match
/// [`read_text`] exactly: undirected, self-loops dropped, duplicate edges
/// deduplicated, and parse errors report the offending line.
pub fn read_text_file<P: AsRef<Path>>(path: P, n: usize) -> io::Result<Csr> {
    // Pass 1: count both endpoints of every listed edge.
    let mut degree = vec![0u64; n];
    for_each_text_edge(&path, n, |v, u| {
        degree[v as usize] += 1;
        degree[u as usize] += 1;
    })?;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0u64;
    offsets.push(0);
    for d in &degree {
        acc += d;
        offsets.push(acc);
    }
    // Pass 2: place each edge at both endpoints' cursors.
    let mut cursor: Vec<u64> = offsets[..n].to_vec();
    let mut targets = vec![0 as VertexId; acc as usize];
    for_each_text_edge(&path, n, |v, u| {
        targets[cursor[v as usize] as usize] = u;
        cursor[v as usize] += 1;
        targets[cursor[u as usize] as usize] = v;
        cursor[u as usize] += 1;
    })?;
    // Sort + dedup each list in place, compacting the offsets.
    let mut write = 0u64;
    let mut new_offsets = Vec::with_capacity(n + 1);
    new_offsets.push(0);
    for v in 0..n {
        let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
        let mut list = targets[lo..hi].to_vec();
        list.sort_unstable();
        list.dedup();
        let w = write as usize;
        targets[w..w + list.len()].copy_from_slice(&list);
        write += list.len() as u64;
        new_offsets.push(write);
    }
    targets.truncate(write as usize);
    Ok(Csr::from_raw(new_offsets, targets))
}

/// Drive `emit(v, u)` over every undirected edge of a text adjacency-list
/// file, line-buffered, with the same tolerances and line-numbered errors
/// as [`read_text`]. Self-loops are skipped; each listed `v: u` pair is
/// emitted once (callers handle symmetrization).
fn for_each_text_edge<P: AsRef<Path>>(
    path: P,
    n: usize,
    mut emit: impl FnMut(VertexId, VertexId),
) -> io::Result<()> {
    let r = BufReader::new(std::fs::File::open(&path)?);
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, rest) = line.split_once(':').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: missing ':'", lineno + 1),
            )
        })?;
        let v: VertexId = head.trim().parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad vertex id: {e}", lineno + 1),
            )
        })?;
        if v as usize >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: vertex id {v} out of range (n = {n})", lineno + 1),
            ));
        }
        for tok in rest.split_whitespace() {
            let u: VertexId = tok.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad neighbor id: {e}", lineno + 1),
                )
            })?;
            if u as usize >= n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "line {}: neighbor id {u} out of range (n = {n})",
                        lineno + 1
                    ),
                ));
            }
            if u != v {
                emit(v, u);
            }
        }
    }
    Ok(())
}

/// Write a graph to `path`, choosing format by extension (`.txt` → text,
/// anything else → binary).
pub fn write_file<P: AsRef<Path>>(path: P, g: &Csr) -> io::Result<()> {
    let f = std::fs::File::create(&path)?;
    if path.as_ref().extension().is_some_and(|e| e == "txt") {
        write_text(f, g)
    } else {
        write_binary(f, g)
    }
}

/// Read a binary graph from `path`.
pub fn read_file<P: AsRef<Path>>(path: P) -> io::Result<Csr> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        let mut el: EdgeList = [(0, 1), (1, 2), (0, 2), (2, 3)].into_iter().collect();
        Csr::from_edges(5, &mut el)
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &g).unwrap();
        let g2 = read_text(&buf[..], g.n()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        let err = read_binary(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    /// Every way a binary graph file can be malformed maps to a typed
    /// error naming the byte offset — never a panic, never a silently
    /// short graph.
    #[test]
    fn binary_malformations_yield_typed_errors_with_byte_offsets() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();

        // Truncated header: file ends inside the 24-byte preamble.
        let err = read_binary(&buf[..10]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");
        assert!(err.to_string().contains("at byte 0"), "{err}");
        assert!(err.to_string().contains("truncated header"), "{err}");

        // Truncated offsets: file ends inside the offset array.
        let err = read_binary(&buf[..HEADER_LEN as usize + 12]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");
        assert!(err.to_string().contains("at byte 24"), "{err}");
        assert!(err.to_string().contains("u64 words missing"), "{err}");

        // Truncated targets: file ends inside the target array.
        let err = read_binary(&buf[..buf.len() - 2]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");
        assert!(err.to_string().contains("u32 words missing"), "{err}");

        // Non-monotone offsets: decreasing entry named by index + offset.
        let mut bad = buf.clone();
        let at = HEADER_LEN as usize + 8; // offsets[1]
        bad[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_binary(&bad[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("offsets[2]"), "{err}");

        // Size mismatch: header's target count disagrees with the
        // offsets' end.
        let mut bad = buf.clone();
        bad[16..24].copy_from_slice(&999u64.to_le_bytes());
        let err = read_binary(&bad[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("999 targets"), "{err}");
    }

    /// [`CsrFile::open`] runs the same validations up front, plus the
    /// file-size check no streaming reader gets for free, and an
    /// out-of-bounds window is an error rather than a panic.
    #[test]
    fn csr_file_refuses_malformed_files_up_front() {
        let dir = std::env::temp_dir().join("gpclust_graph_io_malformed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = sample();
        write_file(&path, &g).unwrap();
        let mut buf = std::fs::read(&path).unwrap();

        // Pristine file: opens, but a window past the end is refused.
        let f = CsrFile::open(&path).unwrap();
        let m = f.n_targets();
        let err = f.read_targets(0, m + 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{err}");
        assert!(err.to_string().contains("out of bounds"), "{err}");
        let err = f.read_targets(2, 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{err}");
        drop(f);

        // Truncated target array: refused at open with the byte count.
        std::fs::write(&path, &buf[..buf.len() - 3]).unwrap();
        let err = CsrFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");
        assert!(err.to_string().contains("target array ends at"), "{err}");

        // Non-monotone offsets: refused at open.
        let at = HEADER_LEN as usize + 8;
        buf[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        let err = CsrFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let text = b"# comment\n\n0: 1 2\n1: 0\n2: 0\n";
        let g = read_text(&text[..], 3).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text(&b"nonsense\n"[..], 3).is_err());
        assert!(read_text(&b"0: x\n"[..], 3).is_err());
    }

    #[test]
    fn file_roundtrip_binary() {
        let dir = std::env::temp_dir().join("gpclust_graph_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = sample();
        write_file(&path, &g).unwrap();
        let g2 = read_file(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let mut el = EdgeList::new();
        let g = Csr::from_edges(0, &mut el);
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    /// A graph big enough that the chunked readers refill several times.
    fn big_sample(n: usize) -> Csr {
        let mut el = EdgeList::new();
        for v in 0..n as VertexId {
            el.push(v, (v + 1) % n as VertexId);
            el.push(v, (v * 7 + 3) % n as VertexId);
        }
        Csr::from_edges(n, &mut el)
    }

    #[test]
    fn chunked_binary_read_crosses_chunk_boundaries() {
        // READ_CHUNK is 1 MiB; ~300K offsets (2.4 MB) force refills.
        let g = big_sample(300_000);
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn csr_file_windows_match_the_resident_graph() {
        let g = sample();
        let dir = std::env::temp_dir().join("gpclust_graph_io_csrfile");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        write_file(&path, &g).unwrap();
        let f = CsrFile::open(&path).unwrap();
        assert_eq!(f.n(), g.n());
        assert_eq!(f.offsets(), g.offsets());
        assert_eq!(f.n_targets() as usize, g.targets().len());
        assert_eq!(f.read_all().unwrap(), g);
        // Every window, including empty and full ones.
        let m = g.targets().len() as u64;
        for lo in 0..=m {
            for hi in lo..=m {
                assert_eq!(
                    f.read_targets(lo, hi).unwrap(),
                    &g.targets()[lo as usize..hi as usize],
                    "window [{lo}, {hi})"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_text_loader_matches_read_text() {
        let g = big_sample(500);
        let dir = std::env::temp_dir().join("gpclust_graph_io_text");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        {
            let f = std::fs::File::create(&path).unwrap();
            write_text(f, &g).unwrap();
        }
        let streamed = read_text_file(&path, g.n()).unwrap();
        assert_eq!(streamed, g);

        // One-directional listings still symmetrize, and duplicates dedup,
        // exactly as the EdgeList-based reader does.
        std::fs::write(&path, "0: 1 1 2\n2: 0\n").unwrap();
        let streamed = read_text_file(&path, 4).unwrap();
        let oracle = read_text(&b"0: 1 1 2\n2: 0\n"[..], 4).unwrap();
        assert_eq!(streamed, oracle);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_text_loader_reports_the_offending_line() {
        let dir = std::env::temp_dir().join("gpclust_graph_io_badtext");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "0: 1\n1: zap\n").unwrap();
        let err = read_text_file(&path, 3).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::write(&path, "0: 9\n").unwrap();
        let err = read_text_file(&path, 3).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        assert!(err.to_string().contains("out of range"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
