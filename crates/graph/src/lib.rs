//! # gpclust-graph — graph substrate
//!
//! Data structures and algorithms beneath the Shingling clustering:
//!
//! * [`edgelist`] — streaming edge accumulation with symmetrize/dedup.
//! * [`csr`] — compressed sparse row adjacency, the in-memory form of the
//!   homology graph ("the graph is made available as an adjacency list").
//! * [`unionfind`] — Tarjan union–find with rank union and path halving,
//!   the structure Phase III uses to merge clusters (paper ref \[21\]).
//! * [`components`] — connected-component detection (BFS oracle and
//!   union–find stream variant), plus label-equivalence helpers for the
//!   device pointer-jumping kernel (raw-label canonicalization, union–find
//!   absorption of per-device labelings); also provides the largest-CC
//!   statistic of Table II.
//! * [`bipartite`] — the bipartite shingle graphs G′(S1, V′l, E′) and
//!   G″(S2, S′1, E″) produced by the two shingling passes, stored in the
//!   adjacency-list (`<shingle, L(shingle)>` tuple) form the paper describes.
//! * [`partition`] — cluster partitions: membership arrays, size
//!   statistics, intra-cluster density (Equation 6), size-bin histograms
//!   (Figure 5).
//! * [`generate`] — planted-partition graph generators for the large-scale
//!   demo run and for property tests.
//! * [`delta`] — pending vertex/edge insertions against a frozen base CSR,
//!   with overlay compaction to the union graph for incremental clustering.
//! * [`subgraph`] — induced subgraphs for pClust's connected-component
//!   decomposition preprocessing.
//! * [`io`] — adjacency-list serialization (text and binary), the pipeline's
//!   disk I/O stage.
//! * [`stats`] — input-graph statistics (Table II).

pub mod bipartite;
pub mod components;
pub mod csr;
pub mod delta;
pub mod edgelist;
pub mod generate;
pub mod io;
pub mod partition;
pub mod stats;
pub mod subgraph;
pub mod unionfind;

/// Vertex identifier used across the workspace (sequence id = vertex id).
pub type VertexId = u32;

pub use bipartite::ShingleGraph;
pub use csr::Csr;
pub use delta::GraphDelta;
pub use edgelist::EdgeList;
pub use partition::Partition;
pub use unionfind::UnionFind;
