//! Connected-component detection.
//!
//! Two interchangeable implementations:
//!
//! * [`bfs_components`] — frontier BFS over a CSR graph; the oracle used in
//!   tests and the method behind the largest-CC statistic of Table II.
//! * [`union_components`] — union–find over an edge stream, usable without
//!   materializing CSR (pClust applies component detection both to the input
//!   graph, to split work, and in Phase III over the shingle graph).

use crate::csr::Csr;
use crate::unionfind::UnionFind;
use crate::VertexId;

/// Component labeling: `labels[v]` is the dense component id of vertex `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    /// Dense component id per vertex, in `0..n_components`.
    pub labels: Vec<u32>,
    /// Number of components (isolated vertices are singleton components).
    pub n_components: usize,
}

impl ComponentLabels {
    /// Canonicalize an arbitrary labeling (any `u32` per vertex, equal iff
    /// same component) into dense first-appearance component ids.
    ///
    /// [`bfs_components`] numbers components by ascending start vertex, and
    /// a min-vertex-id labeling (what the device pointer-jumping kernel
    /// produces) first appears in exactly that order — so canonicalizing a
    /// correct device labeling yields a `ComponentLabels` *equal* to the
    /// BFS oracle's, not merely partition-equivalent.
    pub fn from_raw(raw: &[u32]) -> ComponentLabels {
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut next = 0u32;
        let labels = raw
            .iter()
            .map(|&l| {
                *remap.entry(l).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                })
            })
            .collect();
        ComponentLabels {
            labels,
            n_components: next as usize,
        }
    }

    /// Sizes of all components, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_components];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Members of each component, in ascending vertex order.
    pub fn groups(&self) -> Vec<Vec<VertexId>> {
        let mut groups: Vec<Vec<VertexId>> = vec![Vec::new(); self.n_components];
        for (v, &l) in self.labels.iter().enumerate() {
            groups[l as usize].push(v as VertexId);
        }
        groups
    }
}

/// BFS connected components over a CSR graph.
pub fn bfs_components(g: &Csr) -> ComponentLabels {
    let n = g.n();
    let mut labels = vec![u32::MAX; n];
    let mut queue: Vec<VertexId> = Vec::new();
    let mut next_label = 0u32;
    for start in 0..n as VertexId {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = next_label;
        queue.clear();
        queue.push(start);
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = next_label;
                    queue.push(u);
                }
            }
        }
        next_label += 1;
    }
    ComponentLabels {
        labels,
        n_components: next_label as usize,
    }
}

/// Union–find connected components over an edge stream covering `n` vertices.
pub fn union_components(
    n: usize,
    edges: impl IntoIterator<Item = (VertexId, VertexId)>,
) -> ComponentLabels {
    let mut uf = UnionFind::new(n);
    for (a, b) in edges {
        uf.union(a, b);
    }
    let (labels, n_components) = uf.labels();
    ComponentLabels {
        labels,
        n_components,
    }
}

/// Fold a component labeling into an existing union–find: unions every
/// vertex with its label (labels must be vertex ids, e.g. the min-vertex-id
/// labels a pointer-jumping kernel produces — *not* dense component ids).
///
/// Absorbing the per-device labelings of several partial edge sets yields
/// the connected components of their union — the host-side merge step of
/// multi-GPU device-resident Phase III.
pub fn absorb_labels(uf: &mut UnionFind, labels: &[u32]) {
    for (v, &l) in labels.iter().enumerate() {
        uf.union(v as VertexId, l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn two_triangles_and_isolated() -> Csr {
        let mut el: EdgeList = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
            .into_iter()
            .collect();
        Csr::from_edges(7, &mut el)
    }

    #[test]
    fn bfs_finds_components() {
        let g = two_triangles_and_isolated();
        let cc = bfs_components(&g);
        assert_eq!(cc.n_components, 3);
        assert_eq!(cc.labels[0], cc.labels[1]);
        assert_eq!(cc.labels[0], cc.labels[2]);
        assert_eq!(cc.labels[3], cc.labels[4]);
        assert_ne!(cc.labels[0], cc.labels[3]);
        assert_ne!(cc.labels[0], cc.labels[6]);
        assert_eq!(cc.largest(), 3);
        let mut sizes = cc.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3]);
    }

    #[test]
    fn union_find_matches_bfs() {
        let g = two_triangles_and_isolated();
        let bfs = bfs_components(&g);
        let edges: Vec<_> = (0..g.n() as u32)
            .flat_map(|v| g.neighbors(v).iter().map(move |&u| (v, u)))
            .collect();
        let uf = union_components(g.n(), edges);
        assert_eq!(uf.n_components, bfs.n_components);
        // Labelings must induce the same partition (compare via pairs).
        for v in 0..g.n() {
            for u in 0..g.n() {
                assert_eq!(
                    bfs.labels[v] == bfs.labels[u],
                    uf.labels[v] == uf.labels[u],
                    "vertices {v},{u}"
                );
            }
        }
    }

    #[test]
    fn empty_graph_all_singletons() {
        let mut el = EdgeList::new();
        let g = Csr::from_edges(4, &mut el);
        let cc = bfs_components(&g);
        assert_eq!(cc.n_components, 4);
        assert_eq!(cc.largest(), 1);
    }

    #[test]
    fn groups_partition_vertices() {
        let g = two_triangles_and_isolated();
        let cc = bfs_components(&g);
        let groups = cc.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, g.n());
        assert!(groups.iter().all(|grp| !grp.is_empty()));
    }

    #[test]
    fn from_raw_min_labels_equal_bfs_oracle() {
        let g = two_triangles_and_isolated();
        let bfs = bfs_components(&g);
        // Min-vertex-id labeling of the same graph: {0,1,2}→0, {3,4,5}→3,
        // {6}→6 — what the device CC kernel produces.
        let raw = [0u32, 0, 0, 3, 3, 3, 6];
        assert_eq!(ComponentLabels::from_raw(&raw), bfs);
        // Canonicalization is idempotent on already-dense labels.
        assert_eq!(ComponentLabels::from_raw(&bfs.labels), bfs);
    }

    #[test]
    fn from_raw_empty() {
        let cc = ComponentLabels::from_raw(&[]);
        assert_eq!(cc.n_components, 0);
        assert!(cc.labels.is_empty());
    }

    #[test]
    fn absorb_labels_unions_partial_labelings() {
        // Device 0 saw edges {0-1}, device 1 saw edges {1-2}: their min
        // labelings are [0,0,2,3] and [0,1,1,3]; absorbing both must yield
        // the components of the union {0,1,2},{3}.
        let mut uf = UnionFind::new(4);
        absorb_labels(&mut uf, &[0, 0, 2, 3]);
        absorb_labels(&mut uf, &[0, 1, 1, 3]);
        let (labels, n) = uf.labels();
        assert_eq!(n, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn path_graph_single_component() {
        let mut el: EdgeList = (0..99u32).map(|v| (v, v + 1)).collect();
        let g = Csr::from_edges(100, &mut el);
        let cc = bfs_components(&g);
        assert_eq!(cc.n_components, 1);
        assert_eq!(cc.largest(), 100);
    }
}
