//! Union–find (disjoint-set) with union by rank and path halving.
//!
//! Phase III of the Shingling algorithm "initialize\[s\] a union-find data
//! structure of size n, with all vertices in G in a cluster by itself
//! initially" and unions the vertices covered by each connected component of
//! the second-level shingle graph. This implementation follows Tarjan's
//! classic analysis (paper ref \[21\]): near-constant amortized operations.

use crate::VertexId;

/// Disjoint-set forest over dense `u32` ids.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<VertexId>,
    rank: Vec<u8>,
    n_sets: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "id space exceeds u32");
        UnionFind {
            parent: (0..n as VertexId).collect(),
            rank: vec![0; n],
            n_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently.
    pub fn n_sets(&self) -> usize {
        self.n_sets
    }

    /// Find the representative of `x`, halving the path as it walks.
    #[inline]
    pub fn find(&mut self, mut x: VertexId) -> VertexId {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Read-only find (no compression); O(depth).
    pub fn find_const(&self, mut x: VertexId) -> VertexId {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Union the sets of `a` and `b`. Returns true if they were separate.
    pub fn union(&mut self, a: VertexId, b: VertexId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.n_sets -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: VertexId, b: VertexId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Dense relabeling: returns `labels[v] ∈ 0..k` where `k` is the number
    /// of sets, with equal labels iff same set.
    pub fn labels(&mut self) -> (Vec<u32>, usize) {
        let n = self.len();
        let mut labels = vec![u32::MAX; n];
        let mut next = 0u32;
        for v in 0..n as VertexId {
            let r = self.find(v) as usize;
            if labels[r] == u32::MAX {
                labels[r] = next;
                next += 1;
            }
            labels[v as usize] = labels[r];
        }
        (labels, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sets_are_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.n_sets(), 5);
        for v in 0..5 {
            assert_eq!(uf.find(v), v);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.n_sets(), 2);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(0, 3));
        assert_eq!(uf.n_sets(), 1);
        assert!(uf.same(1, 2));
    }

    #[test]
    fn transitivity_over_chain() {
        let n = 1_000;
        let mut uf = UnionFind::new(n);
        for v in 0..(n as u32 - 1) {
            uf.union(v, v + 1);
        }
        assert_eq!(uf.n_sets(), 1);
        assert!(uf.same(0, n as u32 - 1));
    }

    #[test]
    fn labels_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let (labels, k) = uf.labels();
        assert_eq!(k, 3);
        assert!(labels.iter().all(|&l| (l as usize) < k));
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[0], labels[4]);
        assert_eq!(labels[1], labels[5]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[1], labels[3]);
    }

    #[test]
    fn find_const_agrees_with_find() {
        let mut uf = UnionFind::new(50);
        for i in 0..49u32 {
            if i % 3 != 0 {
                uf.union(i, i + 1);
            }
        }
        for v in 0..50u32 {
            assert_eq!(uf.find_const(v), uf.find(v));
        }
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.n_sets(), 0);
    }
}
