//! Property tests for the graph substrate.

use gpclust_graph::components::{bfs_components, union_components};
use gpclust_graph::{io, Csr, EdgeList, Partition, UnionFind};
use proptest::prelude::*;

fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m)
            .prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_is_symmetric_and_sorted((n, edges) in arb_edges(80, 400)) {
        let mut el: EdgeList = edges.into_iter().collect();
        let g = Csr::from_edges(n, &mut el);
        for v in 0..n as u32 {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted/dup at {}", v);
            for &u in ns {
                prop_assert!(g.neighbors(u).contains(&v));
                prop_assert_ne!(u, v, "self loop survived");
            }
        }
        let total: usize = (0..n as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.m());
    }

    #[test]
    fn binary_io_roundtrip((n, edges) in arb_edges(60, 300)) {
        let mut el: EdgeList = edges.into_iter().collect();
        let g = Csr::from_edges(n, &mut el);
        let mut buf = Vec::new();
        io::write_binary(&mut buf, &g).unwrap();
        prop_assert_eq!(io::read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn text_io_roundtrip((n, edges) in arb_edges(40, 150)) {
        let mut el: EdgeList = edges.into_iter().collect();
        let g = Csr::from_edges(n, &mut el);
        let mut buf = Vec::new();
        io::write_text(&mut buf, &g).unwrap();
        prop_assert_eq!(io::read_text(&buf[..], n).unwrap(), g);
    }

    #[test]
    fn components_bfs_equals_union_find((n, edges) in arb_edges(60, 250)) {
        let mut el: EdgeList = edges.iter().copied().collect();
        let g = Csr::from_edges(n, &mut el);
        let a = bfs_components(&g);
        let b = union_components(n, edges.into_iter().filter(|(x, y)| x != y));
        prop_assert_eq!(a.n_components, b.n_components);
        // Same partition up to relabeling: compare via canonical labels.
        let canon = |labels: &[u32]| {
            let mut remap = std::collections::HashMap::new();
            labels.iter().map(|&l| {
                let next = remap.len() as u32;
                *remap.entry(l).or_insert(next)
            }).collect::<Vec<u32>>()
        };
        prop_assert_eq!(canon(&a.labels), canon(&b.labels));
    }

    #[test]
    fn union_find_is_an_equivalence(ops in proptest::collection::vec((0u32..40, 0u32..40), 0..120)) {
        let mut uf = UnionFind::new(40);
        for &(a, b) in &ops {
            uf.union(a, b);
        }
        // Reflexive + symmetric by construction; transitive via labels.
        let (labels, k) = uf.labels();
        prop_assert_eq!(uf.n_sets(), k);
        for &(a, b) in &ops {
            prop_assert_eq!(labels[a as usize], labels[b as usize]);
        }
        // Singleton count + merged count adds up.
        let mut sizes = std::collections::HashMap::new();
        for &l in &labels {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
        prop_assert_eq!(sizes.values().sum::<usize>(), 40);
    }

    #[test]
    fn partition_filter_monotone(
        membership in proptest::collection::vec(proptest::option::of(0u32..8), 1..120),
        min in 1usize..10,
    ) {
        let p = Partition::from_membership(membership);
        let f = p.filter_min_size(min);
        prop_assert!(f.n_groups() <= p.n_groups());
        prop_assert!(f.assigned_count() <= p.assigned_count());
        for grp in f.groups() {
            prop_assert!(grp.len() >= min);
        }
        // Filtering never rewires membership: kept vertices stay together.
        for grp in f.groups() {
            let orig = p.group_of(grp[0]);
            for &v in grp {
                prop_assert_eq!(p.group_of(v), orig);
            }
        }
    }

    #[test]
    fn histogram_counts_are_consistent(
        membership in proptest::collection::vec(proptest::option::of(0u32..6), 1..4000),
    ) {
        let p = Partition::from_membership(membership);
        let (groups, seqs) = p.size_histogram();
        let in_bins: usize = p.sizes().iter().filter(|&&s| s >= 20).count();
        prop_assert_eq!(groups.iter().sum::<usize>(), in_bins);
        let seqs_in_bins: usize = p.sizes().iter().filter(|&&s| s >= 20).sum();
        prop_assert_eq!(seqs.iter().sum::<usize>(), seqs_in_bins);
    }
}
