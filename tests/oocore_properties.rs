//! Out-of-core properties: under any shard count or resident-byte budget
//! the spill-to-disk sharded path produces clusters bit-identical to the
//! fully resident oracle — across kernels, pipeline modes, aggregation
//! and components modes, 1–4 devices, and injected faults — and the
//! observed peak resident bytes stays under the configured budget on a
//! GOS-2M-shaped synthetic graph.

use gpclust::core::multi_gpu::MultiGpuClust;
use gpclust::core::{
    AggregationMode, ComponentsMode, GpClust, PipelineMode, Plan, SerialShingling, ShingleKernel,
    ShinglingParams, StageTimes,
};
use gpclust::gpu::{DeviceConfig, DeviceError, FaultPlan, Gpu};
use gpclust::graph::{Csr, EdgeList, Partition};
use proptest::prelude::*;

/// The spill directory is per-process, so tests that assert on its
/// contents must not spill concurrently.
static SPILL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Every spilled run is scratch outside a checkpoint: the RAII guard on
/// `SpilledRun` must leave the per-process spill directory empty once a
/// run completes, success or failure.
fn assert_spill_dir_empty(context: &str) {
    let dir = gpclust::core::spill::spill_dir();
    if let Ok(entries) = std::fs::read_dir(&dir) {
        let left: Vec<_> = entries.flatten().map(|e| e.file_name()).collect();
        assert!(
            left.is_empty(),
            "{context}: spill dir {} still holds {left:?}",
            dir.display()
        );
    }
}

/// Strategy: a random undirected graph of up to `max_n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |pairs| {
            let mut el: EdgeList = pairs.into_iter().collect();
            Csr::from_edges(n, &mut el)
        })
    })
}

/// Cluster `g` on `n_devices` simulated GPUs with `plan` installed,
/// returning the partition and the run's stage times.
fn device_run(
    g: &Csr,
    params: ShinglingParams,
    n_devices: usize,
    plan: &FaultPlan,
) -> Result<(Partition, StageTimes), DeviceError> {
    let make = |d: u32| {
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        gpu.set_fault_plan(plan.clone().with_device(d));
        gpu
    };
    if n_devices == 1 {
        let r = GpClust::new(params, make(0)).unwrap().cluster(g)?;
        Ok((r.partition, r.times))
    } else {
        let gpus = (0..n_devices).map(|d| make(d as u32)).collect();
        let r = MultiGpuClust::new(params, gpus).unwrap().cluster(g)?;
        Ok((r.partition, r.times))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Forced shard counts are invisible in the final clusters: every
    /// point of the schedule matrix (kernel × mode × aggregation ×
    /// components × devices), spilled across 2 or 5 shards, fault-free
    /// and under random transient faults, matches the serial oracle.
    #[test]
    fn sharded_spill_matches_oracle_across_the_matrix(
        g in arb_graph(40, 160),
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
    ) {
        let _spill = SPILL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let base = ShinglingParams::light(seed);
        let oracle = SerialShingling::new(base).unwrap().cluster(&g);
        for kernel in [ShingleKernel::SortCompact, ShingleKernel::FusedSelect] {
            for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
                for aggregation in [AggregationMode::Host, AggregationMode::Device] {
                    for components in [ComponentsMode::Host, ComponentsMode::Device] {
                        for shards in [2u32, 5] {
                            for n_devices in 1usize..=4 {
                                for rate in [0.0, 0.05] {
                                    let params = base
                                        .with_kernel(kernel)
                                        .with_mode(mode)
                                        .with_aggregation(aggregation)
                                        .with_components(components)
                                        .with_shards(shards);
                                    let plan = FaultPlan::random(fault_seed, rate);
                                    let (got, _) =
                                        device_run(&g, params, n_devices, &plan).unwrap();
                                    prop_assert_eq!(
                                        &got,
                                        &oracle,
                                        "{:?} {:?} {:?} {:?} {} shard(s) {} device(s) rate {}",
                                        kernel,
                                        mode,
                                        aggregation,
                                        components,
                                        shards,
                                        n_devices,
                                        rate
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_spill_dir_empty("sharded matrix case");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A byte budget (rather than a forced shard count) derives its own
    /// shard count and still reproduces the resident partition exactly,
    /// on one device and on a fleet.
    #[test]
    fn byte_budget_matches_resident_partition(
        g in arb_graph(40, 160),
        seed in 0u64..1000,
        divisor in 2u64..6,
        n_devices in 1usize..=3,
    ) {
        let _spill = SPILL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let base = ShinglingParams::light(seed);
        let oracle = SerialShingling::new(base).unwrap().cluster(&g);
        let est = Plan::estimate_pass_resident_bytes(g.offsets(), base.s1, base.c1);
        // Squeezing below the largest single vertex's resident need is a
        // typed up-front refusal, not a run — clamp to stay feasible.
        let floor = Plan::min_feasible_budget(g.offsets(), base.s1, base.c1);
        let params = base.with_mem_budget((est / divisor).max(floor));
        let (got, _) = device_run(&g, params, n_devices, &FaultPlan::scheduled()).unwrap();
        prop_assert_eq!(&got, &oracle, "budget est/{} on {} device(s)", divisor, n_devices);
        assert_spill_dir_empty("byte budget case");
    }
}

/// A deterministic GOS-2M-shaped graph scaled to test time: `n` vertices
/// whose degrees follow the same skew (a few large families, a long tail
/// of small ones) via an LCG edge sampler biased toward low vertex ids.
fn gos_shaped_graph(n: usize, avg_deg: usize, seed: u64) -> Csr {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let m = n * avg_deg / 2;
    let mut el: EdgeList = (0..m)
        .map(|_| {
            // Square one endpoint's draw so low ids act as family hubs.
            let a = next() as usize % n;
            let b = ((next() as usize % n) * (next() as usize % n)) / n.max(1);
            (a as u32, (b % n) as u32)
        })
        .collect();
    Csr::from_edges(n, &mut el)
}

/// The headline out-of-core acceptance at test scale: on a 2M-like
/// synthetic graph, a budget under 25% of the estimated in-memory
/// footprint completes bit-identically to the resident run with the
/// observed peak resident bytes inside the budget.
#[test]
fn big_graph_peak_resident_stays_under_quarter_budget() {
    let _spill = SPILL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = gos_shaped_graph(60_000, 8, 11);
    // Few trials keep the debug-mode runtime bounded; the record volume
    // (and therefore the spill pressure) stays 2M-like in shape.
    let params = ShinglingParams {
        c1: 4,
        c2: 4,
        ..ShinglingParams::light(11)
    };
    let oracle = {
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        GpClust::new(params, gpu).unwrap().cluster(&g).unwrap()
    };
    // The CI out-of-core job exports GPCLUST_MEM_BUDGET, which bounds
    // this "unbounded" oracle too — the partitions must still agree, but
    // only a genuinely env-free run is guaranteed spill-free.
    if std::env::var_os("GPCLUST_MEM_BUDGET").is_none() {
        assert_eq!(
            oracle.times.spilled_bytes, 0,
            "unbounded oracle must not spill"
        );
    }
    let est = Plan::estimate_pass_resident_bytes(g.offsets(), params.s1, params.c1);
    let budget = est / 5;
    let bounded = {
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        GpClust::new(params.with_mem_budget(budget), gpu)
            .unwrap()
            .cluster(&g)
            .unwrap()
    };
    assert_eq!(bounded.partition, oracle.partition);
    assert!(
        bounded.times.spilled_bytes > 0,
        "a quarter budget must force spilling"
    );
    assert!(
        bounded.times.peak_resident_bytes <= budget,
        "peak resident {} exceeds budget {} (est {})",
        bounded.times.peak_resident_bytes,
        budget,
        est
    );
    assert_spill_dir_empty("big-graph bounded run");
}
