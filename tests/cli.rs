//! End-to-end tests of the `gpclust` CLI binary: generate → build-graph →
//! stats → cluster → quality, through real files and process invocations.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_gpclust")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpclust_cli_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin()).args(args).output().expect("spawn CLI");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn full_cli_workflow() {
    let dir = tmpdir("workflow");
    let faa = dir.join("mg.faa");
    let truth = dir.join("truth.tsv");
    let graph = dir.join("g.bin");
    let clusters = dir.join("clusters.tsv");

    let (ok, _, err) = run(&[
        "generate",
        "--n",
        "600",
        "--seed",
        "5",
        "--out",
        faa.to_str().unwrap(),
        "--truth",
        truth.to_str().unwrap(),
    ]);
    assert!(ok, "generate failed: {err}");
    assert!(faa.exists() && truth.exists());

    let (ok, _, err) = run(&[
        "build-graph",
        "--fasta",
        faa.to_str().unwrap(),
        "--out",
        graph.to_str().unwrap(),
    ]);
    assert!(ok, "build-graph failed: {err}");

    let (ok, stdout, _) = run(&["stats", "--graph", graph.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("# Edges"), "stats output: {stdout}");

    let (ok, _, err) = run(&[
        "cluster",
        "--graph",
        graph.to_str().unwrap(),
        "--out",
        clusters.to_str().unwrap(),
        "--c1",
        "50",
        "--c2",
        "25",
        "--min-size",
        "3",
    ]);
    assert!(ok, "cluster failed: {err}");
    let text = std::fs::read_to_string(&clusters).unwrap();
    assert!(!text.is_empty(), "no clusters written");
    assert!(text.lines().all(|l| l.split('\t').count() == 2));

    let (ok, stdout, err) = run(&[
        "quality",
        "--test",
        clusters.to_str().unwrap(),
        "--benchmark",
        truth.to_str().unwrap(),
        "--n",
        "600",
    ]);
    assert!(ok, "quality failed: {err}");
    assert!(stdout.contains("PPV"), "quality output: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serial_and_device_cli_agree() {
    let dir = tmpdir("agree");
    let faa = dir.join("mg.faa");
    let graph = dir.join("g.bin");
    run(&[
        "generate",
        "--n",
        "400",
        "--seed",
        "9",
        "--out",
        faa.to_str().unwrap(),
    ]);
    run(&[
        "build-graph",
        "--fasta",
        faa.to_str().unwrap(),
        "--out",
        graph.to_str().unwrap(),
    ]);

    let a = dir.join("a.tsv");
    let b = dir.join("b.tsv");
    let (ok, _, err) = run(&[
        "cluster",
        "--graph",
        graph.to_str().unwrap(),
        "--out",
        a.to_str().unwrap(),
        "--serial",
        "--c1",
        "40",
        "--c2",
        "20",
        "--seed",
        "3",
    ]);
    assert!(ok, "{err}");
    let (ok, _, err) = run(&[
        "cluster",
        "--graph",
        graph.to_str().unwrap(),
        "--out",
        b.to_str().unwrap(),
        "--c1",
        "40",
        "--c2",
        "20",
        "--seed",
        "3",
    ]);
    assert!(ok, "{err}");
    assert_eq!(
        std::fs::read_to_string(&a).unwrap(),
        std::fs::read_to_string(&b).unwrap(),
        "serial and device CLI paths must emit identical clusters"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_injection_flags_recover_or_fail_typed() {
    let dir = tmpdir("faults");
    let faa = dir.join("mg.faa");
    let graph = dir.join("g.bin");
    run(&[
        "generate",
        "--n",
        "300",
        "--seed",
        "11",
        "--out",
        faa.to_str().unwrap(),
    ]);
    run(&[
        "build-graph",
        "--fasta",
        faa.to_str().unwrap(),
        "--out",
        graph.to_str().unwrap(),
    ]);

    // Fault-free reference run.
    let clean = dir.join("clean.tsv");
    let (ok, _, err) = run(&[
        "cluster",
        "--graph",
        graph.to_str().unwrap(),
        "--out",
        clean.to_str().unwrap(),
        "--c1",
        "40",
        "--c2",
        "20",
    ]);
    assert!(ok, "{err}");

    // Every device operation faults; the default policy recovers and the
    // clusters are bit-identical. The recovery line reports what happened.
    let faulty = dir.join("faulty.tsv");
    let (ok, _, err) = run(&[
        "cluster",
        "--graph",
        graph.to_str().unwrap(),
        "--out",
        faulty.to_str().unwrap(),
        "--c1",
        "40",
        "--c2",
        "20",
        "--inject-faults",
        "7:1.0",
    ]);
    assert!(ok, "recovering run failed: {err}");
    assert!(err.contains("recovery:"), "no recovery line: {err}");
    assert_eq!(
        std::fs::read_to_string(&clean).unwrap(),
        std::fs::read_to_string(&faulty).unwrap(),
        "faults must not change the clusters"
    );

    // With the policy disabled the same schedule is fatal: one-line typed
    // error on stderr, nonzero status, no panic backtrace.
    let (ok, _, err) = run(&[
        "cluster",
        "--graph",
        graph.to_str().unwrap(),
        "--out",
        dir.join("strict.tsv").to_str().unwrap(),
        "--c1",
        "40",
        "--c2",
        "20",
        "--inject-faults",
        "7:1.0",
        "--max-retries",
        "0",
        "--no-degrade",
    ]);
    assert!(!ok, "strict run must fail");
    assert!(
        err.lines().any(|l| l.starts_with("error:")),
        "stderr: {err}"
    );
    assert!(!err.contains("panicked"), "panic leaked: {err}");

    // A malformed spec is rejected up front.
    let (ok, _, err) = run(&[
        "cluster",
        "--graph",
        graph.to_str().unwrap(),
        "--out",
        dir.join("bad.tsv").to_str().unwrap(),
        "--inject-faults",
        "not-a-spec",
    ]);
    assert!(!ok);
    assert!(
        err.lines().any(|l| l.starts_with("error:")),
        "stderr: {err}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown subcommand"));
}

#[test]
fn missing_required_flag_reports_error() {
    let (ok, _, err) = run(&["build-graph", "--fasta", "/nonexistent.faa"]);
    assert!(!ok);
    assert!(
        err.contains("--out") || err.contains("missing"),
        "stderr: {err}"
    );
}
