//! Properties of the fused hash-transform + segmented top-s selection
//! kernel (`ShingleKernel::FusedSelect`) against the segmented sort +
//! compaction oracle (`ShingleKernel::SortCompact`).
//!
//! The contract: only the s smallest hashes per adjacency list survive a
//! shingling trial, so selecting them directly must be *bit-identical* to
//! fully sorting and compacting — for arbitrary graphs, forced small batch
//! capacities, worker counts, and both pipeline schedules. Everything
//! downstream (aggregation, MCL, Table I) may then treat the kernels as
//! interchangeable and pick the cheap one.

use gpclust::core::gpu_pass::{
    gpu_shingle_pass_foreach_with_capacity, gpu_shingle_pass_overlapped_foreach_with_capacity,
};
use gpclust::core::minwise::HashFamily;
use gpclust::core::shingle::RawShingles;
use gpclust::core::{GpClust, PipelineMode, ShingleKernel, ShinglingParams};
use gpclust::gpu::{DeviceConfig, Gpu};
use gpclust::graph::generate::{planted_partition, PlantedConfig};
use gpclust::graph::Csr;
use proptest::prelude::*;

fn planted(sizes: Vec<usize>, noise: usize, seed: u64) -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: sizes,
        n_noise_vertices: noise,
        p_intra: 0.7,
        max_intra_degree: f64::MAX,
        inter_edges_per_vertex: 0.8,
        seed,
    })
    .graph
}

/// Materialize one device pass's records under an explicit batch capacity
/// (two runs sharing a capacity share a batch plan — the precondition for
/// record-level comparison across kernels).
fn records_at_capacity(
    gpu: &Gpu,
    g: &Csr,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    capacity: usize,
    overlapped: bool,
) -> RawShingles {
    let mut raw = RawShingles::new(s);
    if overlapped {
        gpu_shingle_pass_overlapped_foreach_with_capacity(
            gpu,
            g,
            s,
            family,
            kernel,
            capacity,
            |trial, node, pairs| raw.push(trial, node, pairs),
        )
        .unwrap();
    } else {
        gpu_shingle_pass_foreach_with_capacity(gpu, g, s, family, kernel, capacity, |t, n, p| {
            raw.push(t, n, p)
        })
        .unwrap();
    }
    raw.mark_grouped();
    raw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end equivalence: the fused kernel yields the same partition
    /// as the sort oracle on arbitrary planted graphs, devices (single-
    /// batch K20 vs the tiny device that forces splitting), worker counts,
    /// and pipeline modes — while never planning *more* batches and
    /// reporting its halved per-element footprint.
    #[test]
    fn fused_select_partition_matches_sort_compact(
        sizes in proptest::collection::vec(5usize..40, 1..5),
        noise in 0usize..20,
        graph_seed in 0u64..1000,
        param_seed in 0u64..1000,
        tiny in proptest::bool::ANY,
        overlapped in proptest::bool::ANY,
        workers in 1usize..4,
    ) {
        let g = planted(sizes, noise, graph_seed);
        let config = if tiny {
            DeviceConfig::tiny_test_device()
        } else {
            DeviceConfig::tesla_k20()
        };
        let mode = if overlapped {
            PipelineMode::Overlapped
        } else {
            PipelineMode::Synchronous
        };
        let params = ShinglingParams::light(param_seed).with_mode(mode);
        let sort = GpClust::new(
            params.with_kernel(ShingleKernel::SortCompact),
            Gpu::with_workers(config.clone(), workers),
        )
        .unwrap()
        .cluster(&g)
        .unwrap();
        let select = GpClust::new(
            params.with_kernel(ShingleKernel::FusedSelect),
            Gpu::with_workers(config, workers),
        )
        .unwrap()
        .cluster(&g)
        .unwrap();
        prop_assert_eq!(sort.partition, select.partition);
        prop_assert_eq!(select.times.elem_footprint_bytes, 8);
        prop_assert_eq!(sort.times.elem_footprint_bytes, 16);
        // Double the capacity can only merge splits, never add them.
        prop_assert!(select.times.n_batches <= sort.times.n_batches);
        for pass in 0..2 {
            prop_assert_eq!(select.batch_stats[pass].elem_footprint_bytes, 8);
            prop_assert!(
                select.batch_stats[pass].capacity_elems
                    >= 2 * sort.batch_stats[pass].capacity_elems - 1
            );
        }
    }

    /// Record-level bit-identity under a *shared forced capacity*: with the
    /// batch plan pinned, the fused kernel emits exactly the sort path's
    /// `(trial, node, top-s pairs)` stream — order included — across small
    /// capacities (many splits + boundary carries), worker counts, and both
    /// schedules.
    #[test]
    fn fused_select_records_bit_identical_at_forced_capacity(
        sizes in proptest::collection::vec(10usize..60, 1..4),
        graph_seed in 0u64..500,
        family_seed in 0u64..500,
        capacity in 128usize..2048,
        s in 1usize..4,
        overlapped in proptest::bool::ANY,
        workers in 1usize..4,
    ) {
        let g = planted(sizes, 10, graph_seed);
        let family = HashFamily::new(8, family_seed ^ 0xF00D);
        let sort_gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), workers);
        let sort = records_at_capacity(
            &sort_gpu, &g, s, &family, ShingleKernel::SortCompact, capacity, overlapped,
        );
        let select_gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), workers);
        let select = records_at_capacity(
            &select_gpu, &g, s, &family, ShingleKernel::FusedSelect, capacity, overlapped,
        );
        prop_assert_eq!(sort, select);
        // Same records from strictly less device work: no sort, no gather,
        // no 8-byte packed workspace traffic.
        let (sc, fc) = (sort_gpu.counters(), select_gpu.counters());
        prop_assert!(fc.kernel_launches < sc.kernel_launches);
        prop_assert!(fc.kernel_seconds < sc.kernel_seconds);
        prop_assert_eq!(fc.d2h_bytes, sc.d2h_bytes);
    }
}
