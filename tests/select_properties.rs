//! Properties of the fused hash-transform + segmented top-s selection
//! kernel (`ShingleKernel::FusedSelect`) against the segmented sort +
//! compaction oracle (`ShingleKernel::SortCompact`).
//!
//! The contract: only the s smallest hashes per adjacency list survive a
//! shingling trial, so selecting them directly must be *bit-identical* to
//! fully sorting and compacting — for arbitrary graphs, forced small batch
//! capacities, worker counts, and both pipeline schedules. Everything
//! downstream (aggregation, MCL, Table I) may then treat the kernels as
//! interchangeable and pick the cheap one.
//!
//! End-to-end partition equivalence across the full schedule matrix
//! (kernels × modes × aggregation × device counts × fault rates) lives in
//! `tests/plan_properties.rs`; this suite keeps the record-level and
//! device-cost cases unique to the kernel comparison.

use gpclust::core::minwise::HashFamily;
use gpclust::core::shingle::RawShingles;
use gpclust::core::{
    Executor, PassInput, PipelineMode, Plan, RecoveryReport, ShingleKernel, ShinglingParams, Sink,
};
use gpclust::gpu::{DeviceConfig, Gpu};
use gpclust::graph::generate::{planted_partition, PlantedConfig};
use gpclust::graph::Csr;
use proptest::prelude::*;

fn planted(sizes: Vec<usize>, noise: usize, seed: u64) -> Csr {
    planted_partition(&PlantedConfig {
        group_sizes: sizes,
        n_noise_vertices: noise,
        p_intra: 0.7,
        max_intra_degree: f64::MAX,
        inter_edges_per_vertex: 0.8,
        seed,
    })
    .graph
}

/// Materialize one device pass's records under an explicit batch capacity
/// (two runs sharing a capacity share a batch plan — the precondition for
/// record-level comparison across kernels), streamed through the
/// executor's callback sink exactly as pipeline pass II consumes it.
fn records_at_capacity(
    gpu: &Gpu,
    g: &Csr,
    s: usize,
    family: &HashFamily,
    kernel: ShingleKernel,
    capacity: usize,
    overlapped: bool,
) -> RawShingles {
    let mode = if overlapped {
        PipelineMode::Overlapped
    } else {
        PipelineMode::Synchronous
    };
    let params = ShinglingParams::light(0)
        .with_kernel(kernel)
        .with_mode(mode);
    let plan = Plan::lower(&params, std::slice::from_ref(gpu)).unwrap();
    let pass = plan.pass(s, plan.aggregation, capacity, g.offsets());
    let mut raw = RawShingles::new(s);
    let mut push = |t: u32, n: u32, p: &[u64]| raw.push(t, n, p);
    let mut rec = RecoveryReport::default();
    Executor::new(gpu)
        .run(
            &pass,
            PassInput::of(g),
            family,
            &mut rec,
            Sink::Stream(&mut push),
        )
        .unwrap();
    raw.mark_grouped();
    raw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Record-level bit-identity under a *shared forced capacity*: with the
    /// batch plan pinned, the fused kernel emits exactly the sort path's
    /// `(trial, node, top-s pairs)` stream — order included — across small
    /// capacities (many splits + boundary carries), worker counts, and both
    /// schedules.
    #[test]
    fn fused_select_records_bit_identical_at_forced_capacity(
        sizes in proptest::collection::vec(10usize..60, 1..4),
        graph_seed in 0u64..500,
        family_seed in 0u64..500,
        capacity in 128usize..2048,
        s in 1usize..4,
        overlapped in proptest::bool::ANY,
        workers in 1usize..4,
    ) {
        let g = planted(sizes, 10, graph_seed);
        let family = HashFamily::new(8, family_seed ^ 0xF00D);
        let sort_gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), workers);
        let sort = records_at_capacity(
            &sort_gpu, &g, s, &family, ShingleKernel::SortCompact, capacity, overlapped,
        );
        let select_gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), workers);
        let select = records_at_capacity(
            &select_gpu, &g, s, &family, ShingleKernel::FusedSelect, capacity, overlapped,
        );
        prop_assert_eq!(sort, select);
        // Same records from strictly less device work: no sort, no gather,
        // no 8-byte packed workspace traffic.
        let (sc, fc) = (sort_gpu.counters(), select_gpu.counters());
        prop_assert!(fc.kernel_launches < sc.kernel_launches);
        prop_assert!(fc.kernel_seconds < sc.kernel_seconds);
        prop_assert_eq!(fc.d2h_bytes, sc.d2h_bytes);
    }
}
