//! Fault-injection properties: under any injected fault schedule that
//! does not exhaust the recovery policy, the final clusters are
//! bit-identical to a fault-free run — across kernels, schedules,
//! aggregation modes, components modes, and 1–4 devices. Exhausted
//! policies surface typed errors, never panics.
//!
//! Random-rate fault injection across the full schedule matrix lives in
//! `tests/plan_properties.rs`; this suite keeps the scheduled-fault,
//! device-loss, saturation, and policy-edge cases.

use gpclust::core::multi_gpu::MultiGpuClust;
use gpclust::core::{
    AggregationMode, ComponentsMode, FaultPolicy, GpClust, PipelineMode, SerialShingling,
    ShingleKernel, ShinglingParams,
};
use gpclust::gpu::{DeviceConfig, DeviceError, FaultKind, FaultPlan, FaultSite, Gpu};
use gpclust::graph::{Csr, EdgeList, Partition};
use proptest::prelude::*;

/// Strategy: a random undirected graph of up to `max_n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |pairs| {
            let mut el: EdgeList = pairs.into_iter().collect();
            Csr::from_edges(n, &mut el)
        })
    })
}

/// Strategy: every schedule/kernel/aggregation/components combination via
/// four bits.
fn arb_knobs(
) -> impl Strategy<Value = (PipelineMode, ShingleKernel, AggregationMode, ComponentsMode)> {
    (0u8..16).prop_map(|knobs| {
        (
            if knobs & 1 != 0 {
                PipelineMode::Overlapped
            } else {
                PipelineMode::Synchronous
            },
            if knobs & 2 != 0 {
                ShingleKernel::FusedSelect
            } else {
                ShingleKernel::SortCompact
            },
            if knobs & 4 != 0 {
                AggregationMode::Device
            } else {
                AggregationMode::Host
            },
            if knobs & 8 != 0 {
                ComponentsMode::Device
            } else {
                ComponentsMode::Host
            },
        )
    })
}

/// Strategy: a handful of explicitly scheduled transient faults (random
/// draws are exercised separately via `FaultPlan::random`).
fn arb_schedule() -> impl Strategy<Value = Vec<(FaultSite, u64, FaultKind)>> {
    const SITES: [FaultSite; 4] = [
        FaultSite::H2D,
        FaultSite::D2H,
        FaultSite::Alloc,
        FaultSite::Kernel,
    ];
    const KINDS: [FaultKind; 3] = [
        FaultKind::TransferFailed,
        FaultKind::LaunchFailed,
        FaultKind::Ecc,
    ];
    proptest::collection::vec((0usize..4, 1u64..30, 0usize..3), 0..6).prop_map(|faults| {
        faults
            .into_iter()
            .map(|(site, occurrence, kind)| (SITES[site], occurrence, KINDS[kind]))
            .collect()
    })
}

/// Cluster `g` on `n_devices` simulated GPUs, each with `plan` installed.
fn faulty_partition(
    g: &Csr,
    params: ShinglingParams,
    n_devices: usize,
    plan: &FaultPlan,
) -> Result<Partition, DeviceError> {
    let make = |d: u32| {
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        gpu.set_fault_plan(plan.clone().with_device(d));
        gpu
    };
    if n_devices == 1 {
        Ok(GpClust::new(params, make(0)).unwrap().cluster(g)?.partition)
    } else {
        let gpus = (0..n_devices).map(|d| make(d as u32)).collect();
        Ok(MultiGpuClust::new(params, gpus)
            .unwrap()
            .cluster(g)?
            .partition)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Explicit fault schedules (transient kinds at arbitrary operation
    /// indices) are likewise invisible in the final clusters.
    #[test]
    fn scheduled_faults_preserve_bit_identity(
        g in arb_graph(50, 250),
        (mode, kernel, aggregation, components) in arb_knobs(),
        seed in 0u64..1000,
        schedule in arb_schedule(),
        n_devices in 1usize..=4,
    ) {
        let params = ShinglingParams {
            mode,
            kernel,
            aggregation,
            components,
            seed,
            ..ShinglingParams::light(seed)
        };
        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
        let mut plan = FaultPlan::scheduled();
        for (site, occurrence, kind) in schedule {
            plan = plan.with_fault(site, occurrence, kind);
        }
        let faulty = faulty_partition(&g, params, n_devices, &plan).unwrap();
        prop_assert_eq!(faulty, oracle);
    }

    /// Losing one of two devices mid-run redistributes its remaining
    /// batches to the survivor without changing the clusters.
    #[test]
    fn device_loss_recovery_preserves_bit_identity(
        g in arb_graph(50, 250),
        (mode, kernel, aggregation, components) in arb_knobs(),
        seed in 0u64..500,
        occurrence in 1u64..20,
    ) {
        let params = ShinglingParams {
            mode,
            kernel,
            aggregation,
            components,
            seed,
            ..ShinglingParams::light(seed)
        };
        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
        let gpus: Vec<Gpu> = (0..2)
            .map(|d| {
                let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
                if d == 0 {
                    gpu.set_fault_plan(
                        FaultPlan::scheduled()
                            .with_fault(FaultSite::Kernel, occurrence, FaultKind::DeviceLost)
                            .with_device(0),
                    );
                }
                gpu
            })
            .collect();
        let report = MultiGpuClust::new(params, gpus).unwrap().cluster(&g).unwrap();
        prop_assert_eq!(report.partition, oracle);
    }
}

/// A saturating fault rate degrades batches to the bit-identical host
/// path; the run still succeeds, and the report says what happened.
#[test]
fn saturated_faults_degrade_to_host_and_match() {
    let g = ring_graph(120);
    let params = ShinglingParams::light(5);
    let oracle = SerialShingling::new(params).unwrap().cluster(&g);
    let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
    gpu.set_fault_plan(FaultPlan::random(7, 1.0));
    let report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
    assert_eq!(report.partition, oracle);
    let rec = &report.times.recovery;
    assert!(rec.any());
    assert!(rec.degraded_batches > 0, "{rec}");
    assert!(rec.retries > 0, "{rec}");
    assert!(rec.faults_injected > 0, "{rec}");
}

/// Repeated injected `OutOfMemory` halves the batch capacity and
/// re-plans; the clusters do not change and the backoffs are counted.
#[test]
fn repeated_oom_backs_off_and_matches() {
    let g = ring_graph(150);
    let params = ShinglingParams::light(9);
    let oracle = SerialShingling::new(params).unwrap().cluster(&g);
    let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
    gpu.set_fault_plan(
        FaultPlan::scheduled()
            .with_fault(FaultSite::Alloc, 1, FaultKind::OutOfMemory)
            .with_fault(FaultSite::Alloc, 2, FaultKind::OutOfMemory),
    );
    let report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
    assert_eq!(report.partition, oracle);
    assert!(
        report.times.recovery.oom_backoffs >= 2,
        "{}",
        report.times.recovery
    );
}

/// A strict policy (no retries, no backoff, no degradation) surfaces the
/// injected fault as a typed error — never a panic.
#[test]
fn strict_policy_surfaces_typed_errors() {
    let g = ring_graph(80);
    let params = ShinglingParams::light(3).with_fault_policy(FaultPolicy::strict());

    let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
    gpu.set_fault_plan(FaultPlan::random(11, 1.0));
    let err = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap_err();
    assert!(err.is_transient(), "expected a transient fault, got {err}");

    let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
    gpu.set_fault_plan(FaultPlan::scheduled().with_fault(
        FaultSite::Alloc,
        1,
        FaultKind::OutOfMemory,
    ));
    let err = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap_err();
    assert!(matches!(err, DeviceError::OutOfMemory { .. }), "{err}");
}

/// `LaunchFailed` injected at every kernel-occurrence index in turn under
/// the fully device-resident schedule — the late indices land on the
/// finish-time inversion and connected-components launches — always yields
/// the bit-identical serial partition under the permissive policy, and at
/// least one index exercises the recovery machinery.
#[test]
fn cc_and_inversion_faults_degrade_bit_identically() {
    let g = ring_graph(90);
    let params = ShinglingParams::light(13)
        .with_aggregation(AggregationMode::Device)
        .with_components(ComponentsMode::Device);
    let oracle = SerialShingling::new(params).unwrap().cluster(&g);
    let mut any_recovery = false;
    for occurrence in 1u64..=80 {
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        gpu.set_fault_plan(FaultPlan::scheduled().with_fault(
            FaultSite::Kernel,
            occurrence,
            FaultKind::LaunchFailed,
        ));
        let report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
        assert_eq!(report.partition, oracle, "kernel occurrence {occurrence}");
        any_recovery |= report.times.recovery.any();
    }
    assert!(any_recovery, "no occurrence index hit an injected fault");
}

/// Losing the only device is terminal: a typed `DeviceLost`, not a panic,
/// even under the default (fully permissive) policy.
#[test]
fn single_device_loss_is_typed_and_fatal() {
    let g = ring_graph(80);
    let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
    gpu.set_fault_plan(FaultPlan::scheduled().with_fault(
        FaultSite::Kernel,
        1,
        FaultKind::DeviceLost,
    ));
    let err = GpClust::new(ShinglingParams::light(3), gpu)
        .unwrap()
        .cluster(&g)
        .unwrap_err();
    assert!(matches!(err, DeviceError::DeviceLost { .. }), "{err}");
}

/// `GPCLUST_INJECT_FAULTS=<seed>:<rate>` drives the same plan the
/// `--inject-faults` flag would, and a run under it stays bit-identical.
#[test]
fn env_var_drives_fault_plan() {
    assert_eq!(FaultPlan::parse("123:0.5").unwrap().seed, 123);
    assert!(FaultPlan::parse("123").is_err());
    assert!(FaultPlan::parse("a:b").is_err());
    assert!(FaultPlan::parse("1:1.5").is_err());

    std::env::set_var(gpclust::gpu::fault::FAULT_ENV, "42:0.25");
    let plan = FaultPlan::from_env().expect("env plan");
    std::env::remove_var(gpclust::gpu::fault::FAULT_ENV);
    assert_eq!(plan, FaultPlan::random(42, 0.25));
    assert_eq!(FaultPlan::from_env(), None);

    let g = ring_graph(100);
    let params = ShinglingParams::light(7);
    let oracle = SerialShingling::new(params).unwrap().cluster(&g);
    let faulty = faulty_partition(&g, params, 2, &plan).unwrap();
    assert_eq!(faulty, oracle);
}

/// A cycle with a few chords — connected, deterministic, cheap.
fn ring_graph(n: usize) -> Csr {
    let mut el: EdgeList = (0..n as u32)
        .map(|v| (v, (v + 1) % n as u32))
        .chain((0..n as u32 / 5).map(|v| (v, (v * 7 + 3) % n as u32)))
        .collect();
    Csr::from_edges(n, &mut el)
}
