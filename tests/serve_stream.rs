//! End-to-end test of `gpclust serve`: bootstrap an index from a base
//! graph, apply a scripted delta stream over stdin, kill the server
//! mid-stream (the `crash` command — pending deltas lost, sealed
//! generation durable), resume from the index directory, finish the
//! stream, and diff the dumped partition against a from-scratch
//! `gpclust cluster` run on the union graph. This is the same lifecycle
//! the CI `test-incremental` job scripts.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use gpclust::graph::generate::{planted_partition, PlantedConfig};
use gpclust::graph::io as graph_io;
use gpclust::graph::{Csr, EdgeList, VertexId};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_gpclust")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpclust_serve_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The schedule/parameter flags shared by every invocation — an index
/// bootstrapped by one run must be resumable by the next, so `serve`
/// and `cluster` must agree on them.
const PARAM_FLAGS: &[&str] = &["--seed", "9", "--c1", "40", "--c2", "20"];

/// Run `serve` with `extra` flags, feeding `script` on stdin; returns
/// (exit_code, stdout, stderr).
fn serve(dir: &Path, extra: &[&str], script: &str) -> (Option<i32>, String, String) {
    let mut child = Command::new(bin())
        .arg("serve")
        .args(["--index-dir", dir.join("idx").to_str().unwrap()])
        .args(extra)
        .args(PARAM_FLAGS)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("wait serve");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The canonical (v < u) edge list of `g`.
fn edges_of(g: &Csr) -> Vec<(VertexId, VertexId)> {
    g.iter()
        .flat_map(|(v, ns)| {
            ns.iter()
                .filter(move |&&u| v < u)
                .map(move |&u| (v, u))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn serve_stream_crash_resume_matches_from_scratch_cluster() {
    let dir = tmpdir("lifecycle");
    let union = planted_partition(&PlantedConfig {
        group_sizes: vec![40, 30, 30, 20],
        n_noise_vertices: 30,
        p_intra: 0.8,
        max_intra_degree: 12.0,
        inter_edges_per_vertex: 0.3,
        seed: 41,
    })
    .graph;
    let all = edges_of(&union);
    let cut = all.len() * 9 / 10;
    let (base_edges, delta) = all.split_at(cut);
    let mut el: EdgeList = base_edges.iter().copied().collect();
    let base = Csr::from_edges(union.n(), &mut el);
    let base_path = dir.join("base.bin");
    let union_path = dir.join("union.bin");
    graph_io::write_file(&base_path, &base).unwrap();
    graph_io::write_file(&union_path, &union).unwrap();

    // Session 1: bootstrap, stream the first half of the delta, flush
    // (seals a generation), stream part of the rest WITHOUT flushing,
    // then crash — the unflushed tail must be lost, the sealed
    // generation must survive.
    let half = delta.len() / 2;
    let mut script = String::new();
    for (a, b) in &delta[..half] {
        script.push_str(&format!("add {a} {b}\n"));
    }
    script.push_str("flush\n");
    for (a, b) in &delta[half..] {
        script.push_str(&format!("add {a} {b}\n"));
    }
    script.push_str("crash\n");
    let (code, stdout, stderr) = serve(&dir, &["--graph", base_path.to_str().unwrap()], &script);
    assert_eq!(code, Some(137), "crash must exit 137: {stderr}");
    assert!(
        stderr.contains("bootstrapped generation 1"),
        "bootstrap banner missing: {stderr}"
    );
    assert!(
        stdout.contains("flushed gen=2"),
        "mid-stream flush must seal generation 2: {stdout}"
    );

    // Session 2: resume from the sealed generation and re-apply the
    // lost tail (the client's job — the server told it what was
    // dropped), flush, answer a query, dump the partition.
    let mut script = String::new();
    for (a, b) in &delta[half..] {
        script.push_str(&format!("add {a} {b}\n"));
    }
    script.push_str("flush\n");
    script.push_str("query 0\n");
    let dump = dir.join("served.tsv");
    script.push_str(&format!("dump {}\nquit\n", dump.display()));
    let (code, stdout, stderr) = serve(&dir, &["--resume"], &script);
    assert_eq!(code, Some(0), "resume session failed: {stderr}");
    assert!(
        stderr.contains("resumed generation 2"),
        "resume banner missing: {stderr}"
    );
    assert!(
        stdout.contains("flushed gen=3"),
        "post-resume flush must advance the generation: {stdout}"
    );
    assert!(
        stdout
            .lines()
            .any(|l| l.starts_with("family ") || l == "none"),
        "query must answer from the cached partition: {stdout}"
    );

    // From-scratch run on the union graph: the streamed partition must
    // be bit-identical (same group ids, same TSV bytes; --min-size 1
    // keeps the full partition).
    let full = dir.join("scratch.tsv");
    let status = Command::new(bin())
        .arg("cluster")
        .args(["--graph", union_path.to_str().unwrap()])
        .args(["--out", full.to_str().unwrap()])
        .args(["--min-size", "1"])
        .args(PARAM_FLAGS)
        .output()
        .expect("spawn cluster");
    assert!(
        status.status.success(),
        "cluster failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    let served = std::fs::read_to_string(&dump).unwrap();
    let scratch = std::fs::read_to_string(&full).unwrap();
    assert!(!served.is_empty());
    assert_eq!(
        served, scratch,
        "streamed partition must be bit-identical to the from-scratch run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_refuses_a_stale_index() {
    let dir = tmpdir("stale");
    let union = planted_partition(&PlantedConfig {
        group_sizes: vec![20, 15],
        n_noise_vertices: 10,
        p_intra: 0.85,
        max_intra_degree: 10.0,
        inter_edges_per_vertex: 0.2,
        seed: 42,
    })
    .graph;
    let path = dir.join("g.bin");
    graph_io::write_file(&path, &union).unwrap();
    let (code, _, stderr) = serve(&dir, &["--graph", path.to_str().unwrap()], "quit\n");
    assert_eq!(code, Some(0), "bootstrap session failed: {stderr}");

    // A resume under a different seed must be a typed refusal naming
    // the axis, not a silent re-bootstrap.
    let mut child = Command::new(bin())
        .arg("serve")
        .args(["--index-dir", dir.join("idx").to_str().unwrap()])
        .args(["--resume", "--seed", "11", "--c1", "40", "--c2", "20"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child.stdin.take().unwrap().write_all(b"quit\n").unwrap();
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "stale resume must fail");
    assert!(
        stderr.contains("seed"),
        "refusal must name the mismatched axis: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
