//! Cross-crate property-based tests (proptest): invariants of the
//! clustering pipeline under arbitrary graphs and parameters.

use gpclust::core::quality::ConfusionCounts;
use gpclust::core::{
    AggregationMode, GpClust, PipelineMode, SerialShingling, ShingleKernel, ShinglingParams,
};
use gpclust::gpu::{DeviceConfig, Gpu};
use gpclust::graph::{Csr, EdgeList, Partition};
use proptest::prelude::*;

/// Strategy: a random undirected graph of up to `max_n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |pairs| {
            let mut el: EdgeList = pairs.into_iter().collect();
            Csr::from_edges(n, &mut el)
        })
    })
}

fn arb_params() -> impl Strategy<Value = ShinglingParams> {
    (
        1usize..4,
        2usize..30,
        1usize..4,
        2usize..20,
        0u64..1000,
        // Bits: overlapped schedule, fused kernel, device aggregation.
        0u8..8,
    )
        .prop_map(|(s1, c1, s2, c2, seed, knobs)| {
            let (overlapped, fused, device_agg) = (knobs & 1 != 0, knobs & 2 != 0, knobs & 4 != 0);
            ShinglingParams {
                s1,
                c1,
                s2,
                c2,
                seed,
                mode: if overlapped {
                    PipelineMode::Overlapped
                } else {
                    PipelineMode::Synchronous
                },
                kernel: if fused {
                    ShingleKernel::FusedSelect
                } else {
                    ShingleKernel::SortCompact
                },
                aggregation: if device_agg {
                    AggregationMode::Device
                } else {
                    AggregationMode::Host
                },
                ..ShinglingParams::light(0)
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The GPU pipeline always reproduces the serial oracle, for any graph
    /// and any parameter setting.
    #[test]
    fn gpu_matches_serial_on_arbitrary_graphs(
        g in arb_graph(60, 300),
        params in arb_params(),
    ) {
        let serial = SerialShingling::new(params).unwrap().cluster(&g);
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 2);
        let report = GpClust::new(params, gpu).unwrap().cluster(&g).unwrap();
        prop_assert_eq!(report.partition, serial);
    }

    /// Batching never changes results: the tiny device (forced batching)
    /// agrees with the big one — even when the tiny device additionally
    /// runs the double-buffered overlapped schedule.
    #[test]
    fn batching_invariant_on_arbitrary_graphs(
        g in arb_graph(50, 400),
        seed in 0u64..500,
    ) {
        let params = ShinglingParams {
            s1: 2,
            c1: 12,
            s2: 2,
            c2: 8,
            seed,
            ..ShinglingParams::light(seed)
        };
        let big = GpClust::new(params, Gpu::with_workers(DeviceConfig::tesla_k20(), 2))
            .unwrap().cluster(&g).unwrap();
        let tiny = GpClust::new(params, Gpu::with_workers(DeviceConfig::tiny_test_device(), 2))
            .unwrap().cluster(&g).unwrap();
        prop_assert_eq!(&big.partition, &tiny.partition);
        let tiny_ovl = GpClust::new(
            params.with_mode(PipelineMode::Overlapped),
            Gpu::with_workers(DeviceConfig::tiny_test_device(), 2),
        )
        .unwrap().cluster(&g).unwrap();
        prop_assert_eq!(&big.partition, &tiny_ovl.partition);
    }

    /// Clusters only ever join vertices of the same connected component.
    #[test]
    fn clusters_respect_connected_components(
        g in arb_graph(60, 200),
        seed in 0u64..500,
    ) {
        let cc = gpclust::graph::components::bfs_components(&g);
        let p = SerialShingling::new(ShinglingParams::light(seed)).unwrap().cluster(&g);
        for grp in p.groups() {
            for w in grp.windows(2) {
                prop_assert_eq!(
                    cc.labels[w[0] as usize],
                    cc.labels[w[1] as usize],
                    "cluster crosses components"
                );
            }
        }
    }

    /// The reported partition is a valid partition: every vertex assigned
    /// to exactly one group, groups disjoint and covering.
    #[test]
    fn output_is_a_partition(
        g in arb_graph(50, 250),
        seed in 0u64..500,
    ) {
        let p = SerialShingling::new(ShinglingParams::light(seed)).unwrap().cluster(&g);
        prop_assert_eq!(p.assigned_count(), g.n());
        let total: usize = p.sizes().iter().sum();
        prop_assert_eq!(total, g.n());
        let mut seen = vec![false; g.n()];
        for grp in p.groups() {
            for &v in grp {
                prop_assert!(!seen[v as usize], "vertex {} in two groups", v);
                seen[v as usize] = true;
            }
        }
    }

    /// Quality scores are exact: the contingency computation agrees with
    /// definitional pair counting for arbitrary partition pairs.
    #[test]
    fn confusion_counts_sum_to_total_pairs(
        memb_t in proptest::collection::vec(proptest::option::of(0u32..6), 2..80),
        memb_b_seed in 0u64..100,
    ) {
        let n = memb_t.len();
        // Derive a second membership deterministically from the seed.
        let memb_b: Vec<Option<u32>> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ memb_b_seed;
                (!h.is_multiple_of(4)).then_some((h % 5) as u32)
            })
            .collect();
        let t = Partition::from_membership(memb_t);
        let b = Partition::from_membership(memb_b);
        let c = ConfusionCounts::count(&t, &b);
        let total = (n as u64) * (n as u64 - 1) / 2;
        prop_assert_eq!(c.tp + c.fp + c.fn_ + c.tn, total);
    }

    /// Density is always within [0, 1] for every reported cluster.
    #[test]
    fn densities_are_probabilities(
        g in arb_graph(40, 150),
        seed in 0u64..200,
    ) {
        let p = SerialShingling::new(ShinglingParams::light(seed)).unwrap().cluster(&g);
        for d in p.densities(&g) {
            prop_assert!((0.0..=1.0).contains(&d), "density {}", d);
        }
    }
}
