//! Crash-recovery properties of the checkpointed executor: a run killed
//! at any crash site resumes to a partition bit-identical to the serial
//! oracle, completed shards are replayed from their sealed runs rather
//! than re-executed, any corrupted or truncated sealed file is *detected*
//! (never silently merged), and a resume against the wrong input or plan
//! refuses with a typed error.

use gpclust::core::{
    AggregationMode, CheckpointConfig, CrashPlan, CrashSite, GpClust, SerialShingling,
    ShingleKernel, ShinglingParams, StageTimes, KILL_MARKER,
};
use gpclust::gpu::{DeviceConfig, DeviceError, Gpu};
use gpclust::graph::{Csr, EdgeList, Partition};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh checkpoint directory unique to this test invocation.
fn checkpoint_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gpclust-ckpt-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One single-device checkpointed run.
fn checkpointed_run(
    g: &Csr,
    params: ShinglingParams,
    cfg: CheckpointConfig,
) -> Result<(Partition, StageTimes), DeviceError> {
    let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
    let r = GpClust::new(params, gpu)
        .unwrap()
        .with_checkpoint(cfg)
        .cluster(g)?;
    Ok((r.partition, r.times))
}

fn assert_killed(err: &DeviceError) {
    let msg = format!("{err}");
    assert!(
        msg.contains(KILL_MARKER),
        "expected injected kill, got {msg}"
    );
}

/// The sealed files (runs + pool segments) currently in a journal dir,
/// sorted by name for determinism.
fn sealed_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|it| {
            it.flatten()
                .map(|e| e.path())
                .filter(|p| {
                    p.extension()
                        .is_some_and(|ext| ext == "run" || ext == "pool")
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

/// Strategy: a random undirected graph of up to `max_n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (8..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), max_m / 2..max_m).prop_map(
            move |pairs| {
                let mut el: EdgeList = pairs.into_iter().collect();
                Csr::from_edges(n, &mut el)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The tentpole acceptance: kill the run at every crash site in turn;
    /// each resume completes to the serial oracle's partition, and a
    /// resume after a manifest commit replays exactly the committed
    /// shards from disk (the RecoveryReport counters prove no completed
    /// shard re-executed).
    #[test]
    fn kill_at_any_site_then_resume_matches_the_serial_oracle(
        g in arb_graph(40, 160),
        seed in 0u64..1000,
    ) {
        let base = ShinglingParams::light(seed);
        let oracle = SerialShingling::new(base).unwrap().cluster(&g);
        let params = base.with_shards(2);
        for (site, occurrence) in [
            (CrashSite::ShardSeal, 1),
            (CrashSite::ManifestCommit, 1),
            (CrashSite::Merge, 1),
        ] {
            let dir = checkpoint_dir("kill");
            let cfg = CheckpointConfig::new(&dir)
                .with_crash(CrashPlan::scheduled().with_kill(site, occurrence));
            let err = checkpointed_run(&g, params, cfg).unwrap_err();
            assert_killed(&err);
            let (got, times) = checkpointed_run(
                &g,
                params,
                CheckpointConfig::new(&dir).resuming(),
            )
            .unwrap();
            prop_assert_eq!(&got, &oracle, "kill at {:?}", site);
            let rec = &times.recovery;
            prop_assert_eq!(rec.checksum_failures, 0, "kill at {:?}", site);
            match site {
                // Sealed but never committed: nothing to replay.
                CrashSite::ShardSeal => prop_assert_eq!(rec.resumed_shards, 0),
                // Exactly the one committed shard replays from disk.
                CrashSite::ManifestCommit => prop_assert_eq!(rec.resumed_shards, 1),
                // Every pass-I shard committed before the merge died.
                CrashSite::Merge => prop_assert!(rec.resumed_shards >= 1),
            }
            // finalize retired the journal on success.
            prop_assert!(sealed_files(&dir).is_empty());
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Satellite: any single corrupted *or* truncated sealed file is
    /// caught by checksum verification on resume — the damaged shard
    /// re-executes and the partition still matches the oracle — across
    /// kernels × aggregation modes × shard counts.
    #[test]
    fn corrupted_or_truncated_sealed_runs_are_detected_not_merged(
        g in arb_graph(40, 160),
        seed in 0u64..1000,
        truncate in proptest::bool::ANY,
    ) {
        let base = ShinglingParams::light(seed);
        let oracle = SerialShingling::new(base).unwrap().cluster(&g);
        for kernel in [ShingleKernel::SortCompact, ShingleKernel::FusedSelect] {
            for aggregation in [AggregationMode::Host, AggregationMode::Device] {
                for shards in [2u32, 3] {
                    let params = base
                        .with_kernel(kernel)
                        .with_aggregation(aggregation)
                        .with_shards(shards);
                    let dir = checkpoint_dir("corrupt");
                    // Die at the pass-I merge: every shard is committed
                    // and its sealed files survive on disk.
                    let cfg = CheckpointConfig::new(&dir)
                        .with_crash(CrashPlan::scheduled().with_kill(CrashSite::Merge, 1));
                    let err = checkpointed_run(&g, params, cfg).unwrap_err();
                    assert_killed(&err);
                    let files = sealed_files(&dir);
                    let damaged = if let Some(f) = files.first() {
                        let bytes = std::fs::read(f).unwrap();
                        if truncate {
                            std::fs::write(f, &bytes[..bytes.len() - 5]).unwrap();
                        } else {
                            let mut bytes = bytes;
                            let at = bytes.len() - 5;
                            bytes[at] ^= 0x40;
                            std::fs::write(f, &bytes).unwrap();
                        }
                        true
                    } else {
                        false
                    };
                    let (got, times) = checkpointed_run(
                        &g,
                        params,
                        CheckpointConfig::new(&dir).resuming(),
                    )
                    .unwrap();
                    prop_assert_eq!(
                        &got,
                        &oracle,
                        "{:?} {:?} {} shard(s) truncate={}",
                        kernel,
                        aggregation,
                        shards,
                        truncate
                    );
                    if damaged {
                        prop_assert_eq!(
                            times.recovery.checksum_failures,
                            1,
                            "{:?} {:?} {} shard(s) truncate={}",
                            kernel,
                            aggregation,
                            shards,
                            truncate
                        );
                    }
                    std::fs::remove_dir_all(&dir).ok();
                }
            }
        }
    }
}

/// Resuming against a different input graph or different plan axes is a
/// typed refusal naming what disagrees — never a silent merge of
/// incompatible state.
#[test]
fn resume_refuses_wrong_input_and_wrong_axes() {
    let g = {
        let mut el: EdgeList = (0..30u32).map(|v| (v, (v + 1) % 30)).collect();
        Csr::from_edges(30, &mut el)
    };
    let other = {
        let mut el: EdgeList = (0..30u32).map(|v| (v, (v + 2) % 30)).collect();
        Csr::from_edges(30, &mut el)
    };
    let params = ShinglingParams::light(5).with_shards(2);
    let dir = checkpoint_dir("refuse");
    let cfg = CheckpointConfig::new(&dir)
        .with_crash(CrashPlan::scheduled().with_kill(CrashSite::ManifestCommit, 1));
    let err = checkpointed_run(&g, params, cfg).unwrap_err();
    assert_killed(&err);

    // Same plan, different graph: fingerprint mismatch.
    let err = checkpointed_run(&other, params, CheckpointConfig::new(&dir).resuming()).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("input fingerprint mismatch"), "{msg}");

    // Same graph, different aggregation axis: axes mismatch naming it.
    let err = checkpointed_run(
        &g,
        params.with_aggregation(AggregationMode::Device),
        CheckpointConfig::new(&dir).resuming(),
    )
    .unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("plan axes mismatch"), "{msg}");
    assert!(msg.contains("aggregation"), "{msg}");

    // Resume with nothing there at all.
    let empty = checkpoint_dir("refuse-empty");
    let err = checkpointed_run(&g, params, CheckpointConfig::new(&empty).resuming()).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("nothing to resume"), "{msg}");

    // The matching resume still works and retires the journal.
    let (got, _) = checkpointed_run(&g, params, CheckpointConfig::new(&dir).resuming()).unwrap();
    assert_eq!(got, SerialShingling::new(params).unwrap().cluster(&g));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&empty).ok();
}

/// A deterministic GOS-shaped graph (copy of the oocore helper): a few
/// high-degree family hubs, a long tail of small lists.
fn gos_shaped_graph(n: usize, avg_deg: usize, seed: u64) -> Csr {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let m = n * avg_deg / 2;
    let mut el: EdgeList = (0..m)
        .map(|_| {
            let a = next() as usize % n;
            let b = ((next() as usize % n) * (next() as usize % n)) / n.max(1);
            (a as u32, (b % n) as u32)
        })
        .collect();
    Csr::from_edges(n, &mut el)
}

/// The CI crash-recovery soak: on a GOS-shaped input, kill the run with
/// a different random crash seed on every attempt, resuming each time,
/// until a run survives — then diff against the resident oracle.
/// Committed shards accumulate monotonically across attempts, so the
/// soak converges long before the attempt cap.
#[test]
fn kill_resume_soak_on_gos_shaped_input_matches_resident_oracle() {
    let g = gos_shaped_graph(2_000, 6, 17);
    let base = ShinglingParams::light(21);
    let oracle = {
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        GpClust::new(base, gpu).unwrap().cluster(&g).unwrap()
    };
    let params = base.with_shards(3);
    let dir = checkpoint_dir("soak");
    let mut attempt = 0u64;
    let mut resumed_total = 0u64;
    let outcome = loop {
        let mut cfg =
            CheckpointConfig::new(&dir).with_crash(CrashPlan::random(1000 + attempt, 0.5));
        if attempt > 0 {
            cfg = cfg.resuming();
        }
        match checkpointed_run(&g, params, cfg) {
            Ok(out) => break out,
            Err(err) => assert_killed(&err),
        }
        attempt += 1;
        assert!(attempt < 60, "soak failed to converge in 60 attempts");
        // Count what the next resume can reuse before it runs.
        resumed_total += 1;
    };
    let (got, times) = outcome;
    assert_eq!(got, oracle.partition);
    assert!(resumed_total >= 1, "the soak never actually crashed");
    assert_eq!(times.recovery.checksum_failures, 0);
    assert!(sealed_files(&dir).is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
