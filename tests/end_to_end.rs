//! Cross-crate integration tests: the full pipeline from synthetic
//! sequences through alignment, graph construction, clustering and quality
//! scoring, exercised through the public facade API.

use gpclust::core::quality::ConfusionCounts;
use gpclust::core::{kneighbor_clusters, GpClust, SerialShingling, ShinglingParams};
use gpclust::gpu::{DeviceConfig, Gpu};
use gpclust::graph::Partition;
use gpclust::homology::{graph_from_metagenome, HomologyConfig};
use gpclust::seqsim::metagenome::{Metagenome, MetagenomeConfig};

fn small_metagenome(seed: u64) -> Metagenome {
    Metagenome::generate(&MetagenomeConfig::tiny(400, seed))
}

#[test]
fn sequences_to_clusters_end_to_end() {
    let mg = small_metagenome(101);
    let (graph, stats) = graph_from_metagenome(&mg, &HomologyConfig::default());
    assert!(graph.m() > 0, "no homology edges found");
    assert_eq!(stats.n_edges, graph.m());

    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let pipeline = GpClust::new(ShinglingParams::light(101), gpu).unwrap();
    let report = pipeline.cluster(&graph).expect("cluster");
    let clusters = report.partition.filter_min_size(3);
    assert!(clusters.n_groups() > 0, "no clusters of size >= 3");

    // Quality against planted truth: core-set behavior means high PPV.
    let benchmark = Partition::from_membership(mg.truth.clone());
    let scores = ConfusionCounts::count(&clusters, &benchmark).scores();
    assert!(scores.ppv > 0.9, "PPV {:.3} too low", scores.ppv);
    assert!(scores.se > 0.2, "SE {:.3} implausibly low", scores.se);
}

#[test]
fn serial_and_gpu_agree_on_aligned_graph() {
    // The equality oracle on a *real* (alignment-built) graph, not just
    // planted ones, covering irregular degree structure.
    let mg = small_metagenome(102);
    let (graph, _) = graph_from_metagenome(&mg, &HomologyConfig::default());
    let params = ShinglingParams::light(55);
    let serial = SerialShingling::new(params).unwrap().cluster(&graph);
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let report = GpClust::new(params, gpu).unwrap().cluster(&graph).unwrap();
    assert_eq!(report.partition, serial);
}

#[test]
fn tiny_device_batching_agrees_on_aligned_graph() {
    let mg = small_metagenome(103);
    let (graph, _) = graph_from_metagenome(&mg, &HomologyConfig::default());
    let params = ShinglingParams::light(56);
    let serial = SerialShingling::new(params).unwrap().cluster(&graph);
    let gpu = Gpu::new(DeviceConfig::tiny_test_device());
    let report = GpClust::new(params, gpu).unwrap().cluster(&graph).unwrap();
    assert_eq!(report.partition, serial);
    assert!(
        report.counters.h2d_transfers > 1,
        "tiny device should batch this graph"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let mg = small_metagenome(104);
        let (graph, _) = graph_from_metagenome(&mg, &HomologyConfig::default());
        let gpu = Gpu::new(DeviceConfig::tesla_k20());
        GpClust::new(ShinglingParams::light(9), gpu)
            .unwrap()
            .cluster(&graph)
            .unwrap()
            .partition
    };
    assert_eq!(run(), run());
}

#[test]
fn gpclust_recruits_at_least_as_many_as_gos_on_family_data() {
    // The paper's headline quality shape: gpClust recruits more sequences
    // into clusters than the k-neighbor baseline without losing precision.
    let mg = Metagenome::generate(&MetagenomeConfig::gos_2m_scaled(1_200, 105));
    let (graph, _) = graph_from_metagenome(&mg, &HomologyConfig::default());
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let gp = GpClust::new(ShinglingParams::paper_default(105), gpu)
        .unwrap()
        .cluster(&graph)
        .unwrap()
        .partition
        .filter_min_size(5);
    let gos = kneighbor_clusters(&graph, 10).filter_min_size(5);
    assert!(
        gp.assigned_count() >= gos.assigned_count(),
        "gpClust {} < GOS {}",
        gp.assigned_count(),
        gos.assigned_count()
    );
    let benchmark = Partition::from_membership(mg.truth.clone());
    let gp_scores = ConfusionCounts::count(&gp, &benchmark).scores();
    let gos_scores = ConfusionCounts::count(&gos, &benchmark).scores();
    assert!(
        gp_scores.se >= gos_scores.se,
        "gpClust SE {} < GOS SE {}",
        gp_scores.se,
        gos_scores.se
    );
}

#[test]
fn fasta_roundtrip_preserves_clustering() {
    use gpclust::seqsim::fasta;
    let mg = small_metagenome(106);
    let dir = std::env::temp_dir().join("gpclust_integration_fasta");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.faa");
    fasta::write_file(&path, &mg.proteins).unwrap();
    let proteins = fasta::read_file(&path).unwrap();
    assert_eq!(proteins, mg.proteins);
    std::fs::remove_file(&path).ok();
}

#[test]
fn graph_io_roundtrip_preserves_clustering() {
    let mg = small_metagenome(107);
    let (graph, _) = graph_from_metagenome(&mg, &HomologyConfig::default());
    let dir = std::env::temp_dir().join("gpclust_integration_graph");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.graph.bin");
    gpclust::graph::io::write_file(&path, &graph).unwrap();

    let params = ShinglingParams::light(77);
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let pipeline = GpClust::new(params, gpu).unwrap();
    let from_file = pipeline.cluster_from_file(&path).unwrap();
    let in_memory = pipeline.cluster(&graph).unwrap();
    assert_eq!(from_file.partition, in_memory.partition);
    assert!(from_file.times.disk_io > 0.0);
    std::fs::remove_file(&path).ok();
}
