//! Integration tests of the extension modules through the facade:
//! MCL triangulation, weighted Shingling, multi-GPU, CC decomposition,
//! profile expansion, and the DNA-read generation path.

use gpclust::core::mcl::{mcl_clusters, MclParams};
use gpclust::core::multi_gpu::MultiGpuClust;
use gpclust::core::quality::ConfusionCounts;
use gpclust::core::weighted::{cluster_weighted, WeightedCsr};
use gpclust::core::{GpClust, SerialShingling, ShinglingParams};
use gpclust::gpu::{DeviceConfig, Gpu};
use gpclust::graph::Partition;
use gpclust::homology::{graph_from_metagenome, HomologyConfig};
use gpclust::seqsim::metagenome::{Metagenome, MetagenomeConfig};

fn dataset(n: usize, seed: u64) -> (Metagenome, gpclust::graph::Csr) {
    let mg = Metagenome::generate(&MetagenomeConfig::tiny(n, seed));
    let (g, _) = graph_from_metagenome(&mg, &HomologyConfig::default());
    (mg, g)
}

#[test]
fn three_methods_triangulate_on_real_graph() {
    let (mg, g) = dataset(500, 201);
    let benchmark = Partition::from_membership(mg.truth.clone());

    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let shingling = GpClust::new(ShinglingParams::light(201), gpu)
        .unwrap()
        .cluster(&g)
        .unwrap()
        .partition
        .filter_min_size(4);
    let mcl = mcl_clusters(&g, &MclParams::default()).filter_min_size(4);
    let gos = gpclust::core::kneighbor_clusters(&g, 5).filter_min_size(4);

    for (name, p) in [("shingling", &shingling), ("mcl", &mcl), ("gos", &gos)] {
        let s = ConfusionCounts::count(p, &benchmark).scores();
        assert!(s.ppv > 0.85, "{name} PPV {:.3}", s.ppv);
        assert!(p.n_groups() > 0, "{name} found nothing");
    }
}

#[test]
fn weighted_shingling_on_alignment_scores() {
    // Use raw SW scores as edge weights: unit-weight and score-weighted
    // clusterings must both cover the planted families' cores.
    let (mg, g) = dataset(300, 202);
    let sw = gpclust::align::SmithWaterman::protein_default();
    let mut weights = Vec::with_capacity(g.targets().len());
    for v in 0..g.n() as u32 {
        for &u in g.neighbors(v) {
            let s = sw
                .score(
                    &mg.proteins[v as usize].residues,
                    &mg.proteins[u as usize].residues,
                )
                .max(1) as f32;
            weights.push(s);
        }
    }
    let wg = WeightedCsr::new(g.clone(), weights);
    let p = cluster_weighted(&wg, &ShinglingParams::light(5)).unwrap();
    let benchmark = Partition::from_membership(mg.truth.clone());
    let s = ConfusionCounts::count(&p.filter_min_size(4), &benchmark).scores();
    assert!(s.ppv > 0.85, "weighted PPV {:.3}", s.ppv);
    assert!(s.se > 0.1, "weighted SE {:.3}", s.se);
}

#[test]
fn multi_gpu_matches_single_on_real_graph() {
    let (_, g) = dataset(300, 203);
    let params = ShinglingParams::light(7);
    let single = GpClust::new(params, Gpu::new(DeviceConfig::tesla_k20()))
        .unwrap()
        .cluster(&g)
        .unwrap()
        .partition;
    let gpus = (0..2)
        .map(|_| Gpu::with_workers(DeviceConfig::tiny_test_device(), 1))
        .collect();
    let multi = MultiGpuClust::new(params, gpus)
        .unwrap()
        .cluster(&g)
        .unwrap();
    assert_eq!(multi.partition, single);
}

#[test]
fn decomposition_covers_families_on_real_graph() {
    let (mg, g) = dataset(300, 204);
    let alg = SerialShingling::new(ShinglingParams::light(9)).unwrap();
    let p = gpclust::core::decompose::cluster_by_components_serial(&alg, &g);
    // Co-membership precision against truth stays high.
    let benchmark = Partition::from_membership(mg.truth.clone());
    let s = ConfusionCounts::count(&p.filter_min_size(4), &benchmark).scores();
    assert!(s.ppv > 0.85, "decomposed PPV {:.3}", s.ppv);
}

#[test]
fn dna_generated_dataset_clusters_like_direct() {
    let cfg = MetagenomeConfig::tiny(300, 205);
    let via = Metagenome::generate_via_dna(&cfg, 45);
    let (g, _) = graph_from_metagenome(&via, &HomologyConfig::default());
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    let p = GpClust::new(ShinglingParams::light(3), gpu)
        .unwrap()
        .cluster(&g)
        .unwrap()
        .partition
        .filter_min_size(4);
    let benchmark = Partition::from_membership(via.truth.clone());
    let s = ConfusionCounts::count(&p, &benchmark).scores();
    assert!(s.ppv > 0.8, "DNA-path PPV {:.3}", s.ppv);
    assert!(p.n_groups() > 0);
}

#[test]
fn timeline_model_consistency_on_real_pipeline() {
    use gpclust::gpu::{pipelined_seconds, serialized_seconds};
    let (_, g) = dataset(250, 206);
    let gpu = Gpu::new(DeviceConfig::tesla_k20());
    gpu.timeline().set_enabled(true);
    let pipeline = GpClust::new(ShinglingParams::light(11), gpu).unwrap();
    let report = pipeline.cluster(&g).unwrap();
    let events = pipeline.gpu().timeline().snapshot();
    let serial = serialized_seconds(&events);
    let pipe = pipelined_seconds(&events);
    // Serialized timeline equals the counters' sum (same model).
    let counted = report.times.gpu + report.times.h2d + report.times.d2h;
    assert!(
        (serial - counted).abs() / counted < 1e-6,
        "{serial} vs {counted}"
    );
    assert!(pipe <= serial);
    assert!(pipe >= report.times.gpu - 1e-9);
}
