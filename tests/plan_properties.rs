//! The executor's master oracle suite: one matrix property asserting that
//! every point of the schedule cross-product the [`gpclust::core::Plan`]
//! can lower — {kernel} × {pipeline mode} × {aggregation} × {1–4 devices}
//! × {fault rate 0 / 0.05} — clusters bit-identically to the serial CPU
//! oracle. The serial result is computed once per graph/seed; every
//! combination must reproduce it exactly, which simultaneously pins all
//! combinations to each other.
//!
//! This consolidates the end-to-end equivalence proptests that previously
//! lived per-axis in `tests/select_properties.rs` (kernel axis) and
//! `tests/fault_properties.rs` (random-rate fault axis); those suites
//! keep their record-level, cost-model, and policy-edge cases.

use gpclust::core::multi_gpu::MultiGpuClust;
use gpclust::core::{
    AggregationMode, ComponentsMode, GpClust, PipelineMode, SerialShingling, ShingleKernel,
    ShinglingParams,
};
use gpclust::gpu::{thrust, DeviceConfig, DeviceError, FaultPlan, Gpu};
use gpclust::graph::components::{bfs_components, ComponentLabels};
use gpclust::graph::{Csr, EdgeList, Partition};
use proptest::prelude::*;

/// Strategy: a random undirected graph of up to `max_n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |pairs| {
            let mut el: EdgeList = pairs.into_iter().collect();
            Csr::from_edges(n, &mut el)
        })
    })
}

/// Cluster `g` on `n_devices` simulated GPUs, each with `plan` installed.
/// Multi-device runs use the tiny device so passes split into several
/// batches and the round-robin shares actually cross devices.
fn device_partition(
    g: &Csr,
    params: ShinglingParams,
    n_devices: usize,
    plan: &FaultPlan,
) -> Result<Partition, DeviceError> {
    if n_devices == 1 {
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        gpu.set_fault_plan(plan.clone().with_device(0));
        Ok(GpClust::new(params, gpu).unwrap().cluster(g)?.partition)
    } else {
        let gpus = (0..n_devices)
            .map(|d| {
                let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 1);
                gpu.set_fault_plan(plan.clone().with_device(d as u32));
                gpu
            })
            .collect();
        Ok(MultiGpuClust::new(params, gpus)
            .unwrap()
            .cluster(g)?
            .partition)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Serial oracle ≡ Executor over the full plan matrix. Each proptest
    /// case draws one graph and one parameter seed, then sweeps every
    /// combination of the five schedule axes and both fault rates.
    #[test]
    fn executor_matches_serial_oracle_across_the_plan_matrix(
        g in arb_graph(40, 160),
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
    ) {
        let base = ShinglingParams::light(seed);
        let oracle = SerialShingling::new(base).unwrap().cluster(&g);
        for kernel in [ShingleKernel::SortCompact, ShingleKernel::FusedSelect] {
            for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
                for aggregation in [AggregationMode::Host, AggregationMode::Device] {
                    for components in [ComponentsMode::Host, ComponentsMode::Device] {
                        for n_devices in 1usize..=4 {
                            for rate in [0.0, 0.05] {
                                let params = base
                                    .with_kernel(kernel)
                                    .with_mode(mode)
                                    .with_aggregation(aggregation)
                                    .with_components(components);
                                let plan = FaultPlan::random(fault_seed, rate);
                                let got = device_partition(&g, params, n_devices, &plan)
                                    .unwrap();
                                prop_assert_eq!(
                                    &got,
                                    &oracle,
                                    "{:?} {:?} {:?} {:?} {} device(s) rate {}",
                                    kernel,
                                    mode,
                                    aggregation,
                                    components,
                                    n_devices,
                                    rate
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pointer-jumping CC kernel labels any random graph exactly like
    /// the host BFS oracle once both labelings are canonicalized
    /// (first-appearance order over the same vertex range). Covers the
    /// empty edge set, self-loops, duplicate edges, and disconnected
    /// vertices by construction of [`arb_graph`].
    #[test]
    fn device_cc_labels_match_host_bfs(g in arb_graph(60, 240)) {
        let mut edges: Vec<u64> = Vec::new();
        for v in 0..g.n() as u32 {
            for &t in g.neighbors(v) {
                edges.push(((v as u64) << 32) | t as u64);
            }
        }
        let raw: Vec<u32> = if edges.is_empty() {
            (0..g.n() as u32).collect()
        } else {
            let gpu = Gpu::new(DeviceConfig::tesla_k20());
            let dev = gpu.htod(&edges).unwrap();
            let cc = thrust::connected_components(&gpu, g.n(), &dev).unwrap();
            prop_assert!(cc.iterations >= 1);
            cc.labels
        };
        prop_assert_eq!(raw.len(), g.n());
        prop_assert_eq!(ComponentLabels::from_raw(&raw), bfs_components(&g));
    }
}
