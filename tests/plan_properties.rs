//! The executor's master oracle suite: one matrix property asserting that
//! every point of the schedule cross-product the [`gpclust::core::Plan`]
//! can lower — {kernel} × {pipeline mode} × {aggregation} × {1–4 devices}
//! × {fault rate 0 / 0.05} — clusters bit-identically to the serial CPU
//! oracle. The serial result is computed once per graph/seed; every
//! combination must reproduce it exactly, which simultaneously pins all
//! combinations to each other.
//!
//! This consolidates the end-to-end equivalence proptests that previously
//! lived per-axis in `tests/select_properties.rs` (kernel axis) and
//! `tests/fault_properties.rs` (random-rate fault axis); those suites
//! keep their record-level, cost-model, and policy-edge cases.

use gpclust::core::autotune;
use gpclust::core::multi_gpu::MultiGpuClust;
use gpclust::core::{
    AggregationMode, ComponentsMode, ForcedAxes, GpClust, PipelineMode, PlanAxes, SerialShingling,
    Sharing, ShingleKernel, ShinglingParams, WorkloadShape,
};
use gpclust::gpu::{thrust, DeviceConfig, DeviceError, FaultPlan, Gpu};
use gpclust::graph::components::{bfs_components, ComponentLabels};
use gpclust::graph::{Csr, EdgeList, Partition};
use proptest::prelude::*;

/// Strategy: a random undirected graph of up to `max_n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |pairs| {
            let mut el: EdgeList = pairs.into_iter().collect();
            Csr::from_edges(n, &mut el)
        })
    })
}

/// Cluster `g` on `n_devices` simulated GPUs, each with `plan` installed.
/// Multi-device runs use the tiny device so passes split into several
/// batches and the round-robin shares actually cross devices.
fn device_partition(
    g: &Csr,
    params: ShinglingParams,
    n_devices: usize,
    plan: &FaultPlan,
) -> Result<Partition, DeviceError> {
    if n_devices == 1 {
        let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
        gpu.set_fault_plan(plan.clone().with_device(0));
        Ok(GpClust::new(params, gpu).unwrap().cluster(g)?.partition)
    } else {
        let gpus = (0..n_devices)
            .map(|d| {
                let gpu = Gpu::with_workers(DeviceConfig::tiny_test_device(), 1);
                gpu.set_fault_plan(plan.clone().with_device(d as u32));
                gpu
            })
            .collect();
        Ok(MultiGpuClust::new(params, gpus)
            .unwrap()
            .cluster(g)?
            .partition)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Serial oracle ≡ Executor over the full plan matrix. Each proptest
    /// case draws one graph and one parameter seed, then sweeps every
    /// combination of the five schedule axes and both fault rates.
    #[test]
    fn executor_matches_serial_oracle_across_the_plan_matrix(
        g in arb_graph(40, 160),
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
    ) {
        let base = ShinglingParams::light(seed);
        let oracle = SerialShingling::new(base).unwrap().cluster(&g);
        for kernel in [ShingleKernel::SortCompact, ShingleKernel::FusedSelect] {
            for mode in [PipelineMode::Synchronous, PipelineMode::Overlapped] {
                for aggregation in [AggregationMode::Host, AggregationMode::Device] {
                    for components in [ComponentsMode::Host, ComponentsMode::Device] {
                        for n_devices in 1usize..=4 {
                            for rate in [0.0, 0.05] {
                                let params = base
                                    .with_kernel(kernel)
                                    .with_mode(mode)
                                    .with_aggregation(aggregation)
                                    .with_components(components);
                                let plan = FaultPlan::random(fault_seed, rate);
                                let got = device_partition(&g, params, n_devices, &plan)
                                    .unwrap();
                                prop_assert_eq!(
                                    &got,
                                    &oracle,
                                    "{:?} {:?} {:?} {:?} {} device(s) rate {}",
                                    kernel,
                                    mode,
                                    aggregation,
                                    components,
                                    n_devices,
                                    rate
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `--plan auto` is one more point of the matrix above: whatever axes
    /// the argmin lands on, the partition is still bit-identical to the
    /// serial oracle — on one device and on a fleet, fault-free and under
    /// random faults.
    #[test]
    fn auto_plan_matches_serial_oracle(
        g in arb_graph(40, 160),
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
    ) {
        let base = ShinglingParams::light(seed);
        let oracle = SerialShingling::new(base).unwrap().cluster(&g);
        for n_devices in 1usize..=3 {
            for rate in [0.0, 0.05] {
                let plan = FaultPlan::random(fault_seed, rate);
                let got =
                    device_partition(&g, base.with_plan_auto(), n_devices, &plan).unwrap();
                prop_assert_eq!(
                    &got,
                    &oracle,
                    "auto plan, {} device(s), rate {}",
                    n_devices,
                    rate
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The argmin really is the argmin: on any random workload the free
    /// selection's predicted makespan is no worse than every one of the 16
    /// fully-forced combinations, and forcing all four axes reproduces the
    /// manual plan's axes exactly.
    #[test]
    fn auto_prediction_never_loses_to_a_forced_combo(
        g in arb_graph(60, 240),
        seed in 0u64..1000,
    ) {
        let base = ShinglingParams::light(seed);
        let gpus = vec![Gpu::new(DeviceConfig::tesla_k20())];
        let w = WorkloadShape::from_input(g.n(), g.offsets(), &base);
        let free = autotune::select(&base, ForcedAxes::default(), &w, &gpus).unwrap();
        let all_forced = ForcedAxes {
            kernel: true,
            mode: true,
            aggregation: true,
            components: true,
        };
        for axes in PlanAxes::all() {
            let pinned =
                autotune::select(&axes.apply(base), all_forced, &w, &gpus).unwrap();
            prop_assert_eq!(pinned.axes, axes, "forcing all axes must keep them");
            prop_assert!(
                free.prediction.seconds
                    <= pinned.prediction.seconds * (1.0 + 1e-12),
                "{} predicted {:.6}s, beating auto's {:.6}s",
                axes.describe(),
                pinned.prediction.seconds,
                free.prediction.seconds
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Capability-proportional dealing on a random heterogeneous fleet:
    /// shares sum to one, batch counts partition the total exactly
    /// (complete and disjoint by count), and a faster card — clock,
    /// memory and PCIe bandwidth all scaled together — never gets a
    /// smaller share or fewer batches than a slower one.
    #[test]
    fn heterogeneous_shares_are_complete_and_monotone_in_bandwidth(
        factors in proptest::collection::vec(0.05f64..1.0, 2..5),
        total in 0usize..200,
    ) {
        let gpus: Vec<Gpu> = factors
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                Gpu::new(DeviceConfig::tesla_k20().scaled(&format!("card-{i}"), f))
            })
            .collect();
        let weights =
            autotune::device_weights(&gpus, ShingleKernel::SortCompact, 200);
        let shares = autotune::capability_shares(&weights);
        prop_assert!(
            (shares.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "shares must sum to 1, got {:?}",
            shares
        );
        let counts = autotune::apportion(total, &shares);
        prop_assert_eq!(
            counts.iter().sum::<usize>(),
            total,
            "counts must partition the batch total"
        );
        for i in 0..factors.len() {
            for j in 0..factors.len() {
                if factors[i] >= factors[j] {
                    prop_assert!(
                        weights[i] >= weights[j] - 1e-15,
                        "derating a card must not raise its weight: {:?} {:?}",
                        factors,
                        weights
                    );
                }
                if shares[i] > shares[j] + 1e-12 {
                    prop_assert!(
                        counts[i] >= counts[j],
                        "larger share got fewer batches: {:?} -> {:?}",
                        shares,
                        counts
                    );
                }
            }
        }
    }
}

/// End-to-end plumbing of the acceptance claim: the prediction the
/// pipeline records under `--plan auto` is within 5% of the best of the
/// 16 manual combinations priced on the same workload shape (it is the
/// argmin over exactly those candidates, so this holds with margin to
/// spare).
#[test]
fn pipeline_auto_prediction_is_within_5pct_of_best_manual() {
    let n = 60usize;
    let mut el: EdgeList = (0..n as u32)
        .flat_map(|v| [(v, (v * 7 + 3) % n as u32), (v, (v * 13 + 1) % n as u32)])
        .collect();
    let g = Csr::from_edges(n, &mut el);
    let base = ShinglingParams::light(85);

    let report = GpClust::new(base.with_plan_auto(), Gpu::new(DeviceConfig::tesla_k20()))
        .unwrap()
        .cluster(&g)
        .unwrap();
    assert!(report.times.predicted_total_seconds > 0.0);

    let gpus = vec![Gpu::new(DeviceConfig::tesla_k20())];
    let w = WorkloadShape::from_input(g.n(), g.offsets(), &base);
    let best = PlanAxes::all()
        .into_iter()
        .map(|axes| {
            autotune::predict(axes, &w, &gpus, Sharing::Weighted)
                .unwrap()
                .seconds
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        report.times.predicted_total_seconds <= best * 1.05,
        "auto predicted {:.6}s, best manual {:.6}s",
        report.times.predicted_total_seconds,
        best
    );
    assert!(
        report.times.predicted_total_seconds >= best * (1.0 - 1e-9),
        "auto cannot beat the argmin over the same candidates"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pointer-jumping CC kernel labels any random graph exactly like
    /// the host BFS oracle once both labelings are canonicalized
    /// (first-appearance order over the same vertex range). Covers the
    /// empty edge set, self-loops, duplicate edges, and disconnected
    /// vertices by construction of [`arb_graph`].
    #[test]
    fn device_cc_labels_match_host_bfs(g in arb_graph(60, 240)) {
        let mut edges: Vec<u64> = Vec::new();
        for v in 0..g.n() as u32 {
            for &t in g.neighbors(v) {
                edges.push(((v as u64) << 32) | t as u64);
            }
        }
        let raw: Vec<u32> = if edges.is_empty() {
            (0..g.n() as u32).collect()
        } else {
            let gpu = Gpu::new(DeviceConfig::tesla_k20());
            let dev = gpu.htod(&edges).unwrap();
            let cc = thrust::connected_components(&gpu, g.n(), &dev).unwrap();
            prop_assert!(cc.iterations >= 1);
            cc.labels
        };
        prop_assert_eq!(raw.len(), g.n());
        prop_assert_eq!(ComponentLabels::from_raw(&raw), bfs_components(&g));
    }
}
