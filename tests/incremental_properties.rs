//! Incremental-engine properties: ANY split of a random graph into a base
//! plus a sequence of deltas, streamed through [`IncrementalEngine`],
//! yields a partition (and index) identical to clustering the union graph
//! from scratch — across kernels × aggregation × components × pipeline
//! modes × 1–4 devices × fault rates, under bounded memory, and with
//! vertex growth mixed in. The serial pClust implementation is the
//! oracle, exactly as in `tests/plan_properties.rs`.

use gpclust::core::{
    AggregationMode, ComponentsMode, IncrementalEngine, PipelineMode, RefreshMode, SerialShingling,
    ShingleKernel, ShinglingParams,
};
use gpclust::gpu::{DeviceConfig, FaultPlan, Gpu};
use gpclust::graph::{Csr, EdgeList, VertexId};
use proptest::prelude::*;

/// Strategy: a random undirected graph of up to `max_n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |pairs| {
            let mut el: EdgeList = pairs.into_iter().collect();
            Csr::from_edges(n, &mut el)
        })
    })
}

/// Strategy: every schedule/kernel/aggregation/components combination via
/// four bits.
fn arb_knobs(
) -> impl Strategy<Value = (PipelineMode, ShingleKernel, AggregationMode, ComponentsMode)> {
    (0u8..16).prop_map(|knobs| {
        (
            if knobs & 1 != 0 {
                PipelineMode::Overlapped
            } else {
                PipelineMode::Synchronous
            },
            if knobs & 2 != 0 {
                ShingleKernel::FusedSelect
            } else {
                ShingleKernel::SortCompact
            },
            if knobs & 4 != 0 {
                AggregationMode::Device
            } else {
                AggregationMode::Host
            },
            if knobs & 8 != 0 {
                ComponentsMode::Device
            } else {
                ComponentsMode::Host
            },
        )
    })
}

/// The canonical (v < u) edge list of `g`.
fn edges_of(g: &Csr) -> Vec<(VertexId, VertexId)> {
    g.iter()
        .flat_map(|(v, ns)| {
            ns.iter()
                .filter(move |&&u| v < u)
                .map(move |&u| (v, u))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// A fleet of `n_devices` simulated GPUs with `plan` installed on each.
fn fleet(n_devices: usize, plan: &FaultPlan) -> Vec<Gpu> {
    (0..n_devices)
        .map(|d| {
            let gpu = Gpu::with_workers(DeviceConfig::tesla_k20(), 1);
            gpu.set_fault_plan(plan.clone().with_device(d as u32));
            gpu
        })
        .collect()
}

/// Stream `g` through the engine: first `cut` edges as the base, the rest
/// in `n_batches` flushed deltas. Returns the engine after the last flush.
fn stream_through_engine(
    g: &Csr,
    params: &ShinglingParams,
    gpus: Vec<Gpu>,
    cut: usize,
    n_batches: usize,
    refresh: RefreshMode,
) -> IncrementalEngine {
    let all = edges_of(g);
    let cut = cut.min(all.len());
    let mut base_edges: EdgeList = all[..cut].iter().copied().collect();
    let base = Csr::from_edges(g.n(), &mut base_edges);
    let mut engine = IncrementalEngine::bootstrap(params, gpus, base)
        .unwrap()
        .with_refresh(refresh);
    let rest = &all[cut..];
    let chunk = rest.len().div_ceil(n_batches).max(1);
    for batch in rest.chunks(chunk) {
        for &(a, b) in batch {
            engine.add_edge(a, b);
        }
        engine.flush().unwrap();
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any base/delta split, streamed in any number of batches, lands on
    /// the serial oracle's partition — over the schedule-axis knobs,
    /// fleet sizes, and fault rates.
    #[test]
    fn base_plus_delta_stream_matches_serial_oracle(
        g in arb_graph(40, 160),
        (mode, kernel, aggregation, components) in arb_knobs(),
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        split_pct in 0usize..=100,
        n_batches in 1usize..4,
        n_devices in 1usize..=4,
        faulty in any::<bool>(),
    ) {
        let rate = if faulty { 0.05 } else { 0.0 };
        let params = ShinglingParams {
            mode,
            kernel,
            aggregation,
            components,
            ..ShinglingParams::light(seed)
        };
        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
        let cut = edges_of(&g).len() * split_pct / 100;
        let engine = stream_through_engine(
            &g,
            &params,
            fleet(n_devices, &FaultPlan::random(fault_seed, rate)),
            cut,
            n_batches,
            RefreshMode::Delta,
        );
        prop_assert_eq!(
            engine.partition(),
            &oracle,
            "{:?} {:?} {:?} {:?} split {}% batches {} devices {} rate {}",
            kernel, mode, aggregation, components,
            split_pct, n_batches, n_devices, rate
        );
    }

    /// The maintained index is byte-identical to the one a from-scratch
    /// bootstrap of the union graph builds, whichever refresh path each
    /// flush takes (Auto may mix delta passes and full reclusters).
    #[test]
    fn streamed_index_is_bit_identical_to_from_scratch(
        g in arb_graph(40, 160),
        seed in 0u64..1000,
        split_pct in 0usize..=100,
        n_batches in 1usize..3,
        refresh_bits in 0u8..3,
    ) {
        let refresh = match refresh_bits {
            0 => RefreshMode::Auto,
            1 => RefreshMode::Delta,
            _ => RefreshMode::Full,
        };
        let params = ShinglingParams::light(seed);
        let cut = edges_of(&g).len() * split_pct / 100;
        let engine = stream_through_engine(
            &g,
            &params,
            fleet(1, &FaultPlan::random(0, 0.0)),
            cut,
            n_batches,
            refresh,
        );
        let scratch =
            IncrementalEngine::bootstrap(&params, fleet(1, &FaultPlan::random(0, 0.0)), g.clone())
                .unwrap();
        prop_assert_eq!(engine.index(), scratch.index(), "refresh {:?}", refresh);
        prop_assert_eq!(engine.partition(), scratch.partition());
    }

    /// Bounded-memory delta passes spill and external-merge without
    /// disturbing bit identity.
    #[test]
    fn bounded_budget_stream_matches_serial_oracle(
        g in arb_graph(30, 120),
        seed in 0u64..500,
        split_pct in 0usize..=100,
        n_devices in 1usize..=2,
    ) {
        let params = ShinglingParams::light(seed).with_mem_budget(1 << 20);
        let oracle = SerialShingling::new(params).unwrap().cluster(&g);
        let cut = edges_of(&g).len() * split_pct / 100;
        let engine = stream_through_engine(
            &g,
            &params,
            fleet(n_devices, &FaultPlan::random(0, 0.0)),
            cut,
            1,
            RefreshMode::Delta,
        );
        prop_assert_eq!(engine.partition(), &oracle, "split {}%", split_pct);
    }

    /// Growing the vertex range mid-stream (new sequences arriving) keeps
    /// the engine on the oracle of the grown union graph.
    #[test]
    fn vertex_growth_stream_matches_serial_oracle(
        g in arb_graph(30, 120),
        seed in 0u64..500,
        extra in 1usize..6,
        n_devices in 1usize..=2,
    ) {
        let params = ShinglingParams::light(seed);
        let n = g.n();
        let mut engine = IncrementalEngine::bootstrap(
            &params,
            fleet(n_devices, &FaultPlan::random(0, 0.0)),
            g.clone(),
        )
        .unwrap();
        engine.add_vertices(extra);
        // Chain each new vertex to vertex 0 and to its predecessor.
        for i in 0..extra {
            let v = (n + i) as u32;
            engine.add_edge(v, 0);
            if i > 0 {
                engine.add_edge(v, v - 1);
            }
        }
        engine.flush().unwrap();
        let mut union_edges: EdgeList = edges_of(&g).into_iter().collect();
        for i in 0..extra {
            let v = (n + i) as u32;
            union_edges.push(v, 0);
            if i > 0 {
                union_edges.push(v, v - 1);
            }
        }
        let union = Csr::from_edges(n + extra, &mut union_edges);
        let oracle = SerialShingling::new(params).unwrap().cluster(&union);
        prop_assert_eq!(engine.partition(), &oracle, "extra {}", extra);
    }
}
